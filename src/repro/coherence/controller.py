"""Base class for per-node protocol controllers.

Each glueless node (Figure 1) integrates the processor-side sequencer,
the L2 coherence cache, the coherence controller, and the memory
controller for its slice of shared memory.  :class:`ProtocolNode` holds
everything protocol-independent: the L2 array, MSHRs with operation
coalescing, DRAM, message construction/routing helpers, eviction
plumbing, and the statistics hooks.  The four protocol subclasses
implement ``handle_message``, ``_issue_transaction``, ``_evict_line``,
and the permission predicates.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.cache.cache import CacheLine, SetAssociativeCache
from repro.cache.mshr import MshrEntry, MshrTable
from repro.coherence.checker import CoherenceChecker
from repro.coherence.messages import CoherenceMessage, control_message, data_message
from repro.interconnect.topology import Interconnect
from repro.memory.address import AddressMap
from repro.memory.dram import Dram
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter
from repro.config import SystemConfig


class ProtocolError(RuntimeError):
    """An unrecoverable protocol-level condition (misconfiguration)."""


class ProtocolNode(abc.ABC):
    """One node's coherence machinery (cache side + home memory side)."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Interconnect,
        config: SystemConfig,
        checker: CoherenceChecker,
        counters: Counter,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.config = config
        self.checker = checker
        self.counters = counters
        self.addr_map = AddressMap(config.n_procs, config.block_bytes)
        # Hot-path constants, hoisted so per-message code avoids chained
        # attribute lookups (home mapping is block % n_nodes).
        self._home_mod = self.addr_map.n_nodes
        self.l2 = SetAssociativeCache.from_geometry(
            config.l2_bytes, config.l2_assoc, config.block_bytes
        )
        self.mshrs = MshrTable(config.mshr_capacity)
        self.dram = Dram(sim, config.dram_latency_ns)
        #: Evicted-but-unacknowledged lines still owned by this node.
        self.writeback_buffer: dict[int, dict[str, Any]] = {}
        self._lose_block_hook: Callable[[int], None] | None = None
        network.attach(node_id, self.handle_message)

    # ------------------------------------------------------------------
    # Sequencer-facing API
    # ------------------------------------------------------------------

    def set_lose_block_hook(self, hook: Callable[[int], None]) -> None:
        """Called with a block number whenever the L2 loses read
        permission for it, so the sequencer can enforce L1 inclusion."""
        self._lose_block_hook = hook

    def probe(self, block: int, for_write: bool) -> int | None:
        """L2 permission check: data version on a hit, None on a miss."""
        line = self.l2.lookup(block)
        if line is None:
            return None
        if for_write:
            return line.version if self._line_can_write(line) else None
        return line.version if self._line_can_read(line) else None

    def perform_store(self, block: int) -> int:
        """Complete a store on a line held with write permission."""
        line = self.l2.lookup(block)
        if line is None or not self._line_can_write(line):
            raise ProtocolError(
                f"P{self.node_id} store to block {block:#x} without write "
                f"permission (line={line})"
            )
        new_version = self.checker.record_store(
            block, self.node_id, self.sim.now, line.version
        )
        line.version = new_version
        line.dirty = True
        return new_version

    def start_miss(
        self, block: int, for_write: bool, on_complete: Callable[[int], None]
    ) -> MshrEntry:
        """Begin (or join) a coherence transaction for ``block``.

        ``on_complete(version)`` fires once the operation has been
        performed with the required permission.
        """
        entry = self.mshrs.get(block)
        if entry is not None:
            entry.waiters.append((for_write, on_complete))
            return entry
        entry = self.mshrs.allocate(block, for_write, self.sim.now)
        entry.waiters.append((for_write, on_complete))
        self.counters.add("l2_miss")
        self.counters.add("miss_store" if for_write else "miss_load")
        self._issue_transaction(entry)
        return entry

    def outstanding_misses(self) -> int:
        return len(self.mshrs)

    # ------------------------------------------------------------------
    # Transaction completion plumbing
    # ------------------------------------------------------------------

    def _finish_mshr(self, entry: MshrEntry) -> None:
        """Release the MSHR and satisfy (or re-dispatch) coalesced ops."""
        block = entry.block
        self.mshrs.free(block)
        self._record_miss_class(entry)
        waiters = list(entry.waiters)
        entry.waiters.clear()
        deferred: list[tuple[bool, Callable[[int], None]]] = []
        for for_write, callback in waiters:
            line = self.l2.lookup(block)
            if for_write:
                if line is not None and self._line_can_write(line):
                    callback(self.perform_store(block))
                else:
                    deferred.append((for_write, callback))
            else:
                if line is not None and self._line_can_read(line):
                    callback(line.version)
                else:
                    deferred.append((for_write, callback))
        for for_write, callback in deferred:
            self.start_miss(block, for_write, callback)

    def _record_miss_class(self, entry: MshrEntry) -> None:
        """Classify the finished miss for Table 2 (TokenB overrides)."""
        del entry

    # ------------------------------------------------------------------
    # Cache installation and eviction
    # ------------------------------------------------------------------

    def _install_line(self, block: int) -> CacheLine:
        """Return the line for ``block``, evicting a victim if needed."""
        line = self.l2.lookup(block)
        if line is not None:
            return line
        victim = self._choose_victim(block)
        if victim is not None:
            self._evict_line(victim)
            if self.l2.contains(victim.block):
                raise ProtocolError(
                    f"_evict_line left block {victim.block:#x} resident"
                )
        return self.l2.insert(block)

    def _choose_victim(self, block: int) -> CacheLine | None:
        """LRU victim, skipping lines with in-flight transactions."""
        if self.l2.set_has_room(block):
            return None
        candidates = [
            line
            for line in self.l2.lines_in_set(block)
            if line.block not in self.mshrs
            and line.block not in self.writeback_buffer
            and self._line_evictable(line)
        ]
        if not candidates:
            raise ProtocolError(
                "no evictable line in set (all ways have in-flight "
                "transactions); increase l2_assoc or reduce "
                "max_outstanding_misses"
            )
        return min(candidates, key=lambda line: line._last_use)  # noqa: SLF001

    def _line_evictable(self, line: CacheLine) -> bool:
        """Protocols may pin lines (e.g. active persistent requests)."""
        del line
        return True

    def _drop_line(self, block: int) -> CacheLine | None:
        """Remove a line and tell the sequencer (L1 inclusion)."""
        line = self.l2.remove(block)
        if line is not None:
            self._notify_lose_block(block)
        return line

    def _notify_lose_block(self, block: int) -> None:
        if self._lose_block_hook is not None:
            self._lose_block_hook(block)

    # ------------------------------------------------------------------
    # Messaging helpers
    # ------------------------------------------------------------------

    def home_of(self, block: int) -> int:
        return block % self._home_mod

    def is_home(self, block: int) -> bool:
        return block % self._home_mod == self.node_id

    def send_msg(self, msg: CoherenceMessage) -> None:
        """Route a unicast message; node-local traffic skips the network."""
        if msg.dst == self.node_id:
            self.sim.post(0.0, self.handle_message, msg)
            return
        self.network.send(msg)

    def broadcast_msg(self, msg: CoherenceMessage, include_self: bool = False) -> None:
        self.network.broadcast(msg, include_self=include_self)

    def make_control(self, **kwargs) -> CoherenceMessage:
        kwargs.setdefault("src", self.node_id)
        return control_message(**kwargs)

    def make_data(self, **kwargs) -> CoherenceMessage:
        kwargs.setdefault("src", self.node_id)
        return data_message(**kwargs)

    # ------------------------------------------------------------------
    # Protocol-specific behaviour
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def handle_message(self, msg: CoherenceMessage) -> None:
        """Deliver an incoming network message to this node."""

    @abc.abstractmethod
    def _issue_transaction(self, entry: MshrEntry) -> None:
        """Send the first request(s) for a newly allocated miss."""

    @abc.abstractmethod
    def _evict_line(self, line: CacheLine) -> None:
        """Displace ``line`` from the L2 (writeback/token return)."""

    @abc.abstractmethod
    def _line_can_read(self, line: CacheLine) -> bool:
        """May the local processor read this line right now?"""

    @abc.abstractmethod
    def _line_can_write(self, line: CacheLine) -> bool:
        """May the local processor write this line right now?"""
