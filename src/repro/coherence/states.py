"""MOESI coherence states and the token-count mapping.

Section 3.1 of the paper maps token possession onto the familiar states
(Sweazey & Smith [41]):

* all T tokens                      -> **M** (modified)
* owner token but not all tokens    -> **O** (owned)
* 1..T-1 tokens, no owner token     -> **S** (shared)
* no tokens                         -> **I** (invalid)

The baseline protocols in this repository are MOSI (no exclusive state),
matching Section 5.1.
"""

from __future__ import annotations

import enum


class Moesi(str, enum.Enum):
    """Stable coherence states."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    def can_read(self) -> bool:
        return self is not Moesi.INVALID

    def can_write(self) -> bool:
        return self in (Moesi.MODIFIED, Moesi.EXCLUSIVE)

    def is_owner(self) -> bool:
        """Does a cache in this state supply data on other nodes' misses?"""
        return self in (Moesi.MODIFIED, Moesi.OWNED, Moesi.EXCLUSIVE)


def state_from_tokens(tokens: int, owner_token: bool, total_tokens: int) -> Moesi:
    """Map a token count to the equivalent MOESI state (Section 3.1).

    Raises ValueError for impossible combinations (more tokens than exist,
    or an owner token claimed with zero tokens).
    """
    if not 0 <= tokens <= total_tokens:
        raise ValueError(f"token count {tokens} outside [0, {total_tokens}]")
    if owner_token and tokens == 0:
        raise ValueError("cannot hold the owner token with zero tokens")
    if tokens == 0:
        return Moesi.INVALID
    if tokens == total_tokens:
        return Moesi.MODIFIED
    if owner_token:
        return Moesi.OWNED
    return Moesi.SHARED
