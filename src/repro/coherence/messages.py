"""Coherence message vocabulary shared by all four protocols.

One flexible dataclass rather than a class per message type: protocol
handlers dispatch on ``mtype`` strings.  Message types used by each
protocol:

================  ==========================================================
Protocol          Message types
================  ==========================================================
TokenB            GETS, GETM (transient requests, broadcast);
                  TOKEN_DATA (data + tokens), TOKEN_ONLY (dataless tokens);
                  PERSISTENT_REQ, PERSISTENT_ACTIVATE, PERSISTENT_ACK,
                  PERSISTENT_DEACTIVATE, PERSISTENT_DEACT_ACK
Snooping          GETS, GETM, PUT (ordered broadcasts); DATA (response);
                  WB_DATA (writeback data to home)
Directory         GETS, GETM, PUT (to home); FWD_GETS, FWD_GETM, INV (from
                  home); DATA, ACK (to requester); UNBLOCK, PUT_ACK,
                  WB_DATA
Hammer            GETS, GETM, PUT (to home); PROBE (home broadcast); DATA,
                  ACK (to requester); UNBLOCK, PUT_ACK, WB_DATA
================  ==========================================================

Sizes follow Section 5.1: data-bearing messages are 72 bytes, everything
else 8 bytes.  ``data_version`` is the integer payload standing in for the
64-byte block, consumed by the coherence checker.
"""

from __future__ import annotations

import dataclasses

from repro.interconnect.message import (
    CONTROL_MESSAGE_BYTES,
    DATA_MESSAGE_BYTES,
    Message,
)

#: Transient performance-protocol requests.  Losing, repeating, or
#: reordering these is explicitly covered by the paper's reissue +
#: persistent machinery, so they are the only message types the
#: adversarial layers (:mod:`repro.testing.perturb`, :mod:`repro.faults`)
#: may discard on token protocols.
TRANSIENT_REQUEST_MTYPES = ("GETS", "GETM")


@dataclasses.dataclass(slots=True)
class CoherenceMessage(Message):
    """A protocol message; see module docstring for the ``mtype`` values."""

    mtype: str = ""
    block: int = 0
    #: The node whose miss this message serves (responses and forwards).
    requester: int = -1
    #: Token count carried (Token Coherence only).
    tokens: int = 0
    #: True if the owner token rides in this message (must carry data,
    #: Invariant #4').
    owner_token: bool = False
    #: Data payload version; None on dataless messages.
    data_version: int | None = None
    #: Invalidation-ack count the requester must collect (Directory).
    acks_expected: int = 0
    #: Migratory-sharing grant: receiver may install M on a GETS response.
    is_exclusive: bool = False
    #: Tag disambiguating persistent-request sessions and marking
    #: memory-sourced data (protocol-specific small integer).
    tag: int = 0
    #: Requester-local transaction id, echoed by responders so a late
    #: response to a completed transaction cannot be mistaken for the
    #: response to a newer one (needed by split-transaction snooping).
    tx: int = 0

    def carries_data(self) -> bool:
        return self.data_version is not None


def control_message(**kwargs) -> CoherenceMessage:
    """Build an 8-byte control message."""
    kwargs.setdefault("size_bytes", CONTROL_MESSAGE_BYTES)
    return CoherenceMessage(**kwargs)


def data_message(**kwargs) -> CoherenceMessage:
    """Build a 72-byte data message; requires ``data_version``."""
    if kwargs.get("data_version") is None:
        raise ValueError("data messages must carry a data_version")
    kwargs.setdefault("size_bytes", DATA_MESSAGE_BYTES)
    return CoherenceMessage(**kwargs)
