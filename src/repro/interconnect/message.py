"""Network message base class and size constants.

Message sizes follow Section 5.1 of the paper: every request,
acknowledgment, invalidation, and dataless token message is 8 bytes
(covering the 40+ bit physical address plus a token count where needed);
data messages add a 64-byte cache block to that header, for 72 bytes.
"""

from __future__ import annotations

import dataclasses
import itertools

CONTROL_MESSAGE_BYTES = 8
DATA_BLOCK_BYTES = 64
DATA_MESSAGE_BYTES = CONTROL_MESSAGE_BYTES + DATA_BLOCK_BYTES

#: Destination value meaning "all nodes" (tree-based multicast).
BROADCAST = -1

_message_ids = itertools.count()


@dataclasses.dataclass(slots=True)
class Message:
    """Base class for everything that crosses the interconnect.

    Attributes:
        src: Sending node id.
        dst: Receiving node id, or :data:`BROADCAST`.
        size_bytes: Wire size; 8 for control, 72 for data-bearing messages.
        category: Traffic-accounting label (e.g. ``"request"``, ``"data"``).
        vnet: Virtual-network name.  Virtual networks share physical link
            bandwidth (they exist for deadlock freedom and, on the tree,
            to mark which traffic is totally ordered).
        ordered_seq: Global sequence number stamped by the tree root for
            messages on the ordered virtual network; ``None`` elsewhere.
        msg_id: Unique id for debugging and deterministic tie-breaks.
    """

    src: int
    dst: int
    size_bytes: int = CONTROL_MESSAGE_BYTES
    category: str = "request"
    vnet: str = "request"
    ordered_seq: int | None = dataclasses.field(default=None, compare=False)
    msg_id: int = dataclasses.field(
        default_factory=lambda: next(_message_ids), compare=False
    )

    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST
