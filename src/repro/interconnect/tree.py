"""Totally-ordered two-level broadcast tree (Figure 1a).

The 16-node configuration uses nine discrete switches: four *incoming*
switches (fan-in 4), one *root*, and four *outgoing* switches (fan-out 4).
Every message — unicast or broadcast — crosses exactly four links:

    node -> incoming switch -> root -> outgoing switch -> node

The root switch makes this interconnect a "virtual bus": it stamps every
broadcast on an ordered virtual network with a global sequence number, and
because all downstream links are FIFO with identical latency, every node
observes those broadcasts in exactly root order.  A per-node reorder stage
additionally *enforces* sequence order at delivery, so protocol code may
rely on the total order unconditionally.  This is the ordering property
traditional snooping requires (Section 2) and the one the torus lacks.
"""

from __future__ import annotations

import math

from repro.interconnect.link import Link
from repro.interconnect.message import Message
from repro.interconnect.topology import Interconnect
from repro.sim.kernel import Simulator
from repro.sim.stats import TrafficMeter

#: Virtual networks whose broadcasts receive (and are delivered in) the
#: root-assigned total order.
ORDERED_VNET = "ordered"


class OrderedTreeInterconnect(Interconnect):
    """Two-level indirect tree with a sequencing root switch."""

    provides_total_order = True

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        link_latency: float,
        link_bandwidth: float | None,
        traffic: TrafficMeter | None = None,
        fanout: int = 4,
    ) -> None:
        super().__init__(sim, n_nodes, link_latency, link_bandwidth, traffic)
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        self.n_groups = math.ceil(n_nodes / fanout)

        def link(name: str) -> Link:
            return Link(sim, name, link_latency, link_bandwidth, self.traffic)

        self._up = [link(f"up[{i}]") for i in range(n_nodes)]
        self._in_root = [link(f"in_root[{g}]") for g in range(self.n_groups)]
        self._root_out = [link(f"root_out[{g}]") for g in range(self.n_groups)]
        self._down = [link(f"down[{i}]") for i in range(n_nodes)]
        #: Per-group (node, down-link) fan-out plan for the delivery stage.
        self._members: list[tuple[tuple[int, Link], ...]] = [
            tuple((node, self._down[node]) for node in self._group_members(g))
            for g in range(self.n_groups)
        ]

        self._next_order_seq = 0
        self._expected_seq = [0] * n_nodes
        self._reorder: list[dict[int, Message]] = [{} for _ in range(n_nodes)]

    def group_of(self, node_id: int) -> int:
        """Index of the leaf switch pair serving ``node_id``."""
        return node_id // self.fanout

    def _group_members(self, group: int) -> list[int]:
        lo = group * self.fanout
        return list(range(lo, min(lo + self.fanout, self.n_nodes)))

    # ------------------------------------------------------------------
    # Unicast
    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        if msg.is_broadcast():
            raise ValueError("use broadcast() for broadcast messages")
        if msg.vnet == ORDERED_VNET:
            raise ValueError(
                "ordered vnet carries only broadcasts (total-order contract)"
            )
        if msg.src == msg.dst:
            # Node-local traffic never leaves the integrated node.
            self.sim.post(0.0, self._deliver, msg.dst, msg)
            return
        arrival = self._up[msg.src].occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._unicast_at_in_switch, msg)

    def _unicast_at_in_switch(self, msg: Message) -> None:
        link = self._in_root[msg.src // self.fanout]
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._unicast_at_root, msg)

    def _unicast_at_root(self, msg: Message) -> None:
        link = self._root_out[msg.dst // self.fanout]
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._unicast_at_out_switch, msg)

    def _unicast_at_out_switch(self, msg: Message) -> None:
        arrival = self._down[msg.dst].occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._deliver, msg.dst, msg)

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------

    def broadcast(self, msg: Message, include_self: bool = False) -> None:
        """Broadcast via the root.

        Ordered-vnet broadcasts are always delivered to the sender too:
        a snooping requester must observe its own request to learn its
        place in the total order, and per-node sequence accounting relies
        on every node seeing every ordered broadcast.
        """
        if msg.vnet == ORDERED_VNET:
            include_self = True
        arrival = self._up[msg.src].occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._broadcast_at_in_switch, msg, include_self)

    def _broadcast_at_in_switch(self, msg: Message, include_self: bool) -> None:
        link = self._in_root[msg.src // self.fanout]
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._broadcast_at_root, msg, include_self)

    def _broadcast_at_root(self, msg: Message, include_self: bool) -> None:
        if msg.vnet == ORDERED_VNET:
            msg.ordered_seq = self._next_order_seq
            self._next_order_seq += 1
        sim = self.sim
        size = msg.size_bytes
        category = msg.category
        at_out = self._broadcast_at_out_switch
        for group, link in enumerate(self._root_out):
            arrival = link.occupy(size, category)
            sim.post_at(arrival, at_out, msg, group, include_self)

    def _broadcast_at_out_switch(
        self, msg: Message, group: int, include_self: bool
    ) -> None:
        # Batched delivery fan-out: one precomputed plan walk per group.
        sim = self.sim
        size = msg.size_bytes
        category = msg.category
        arrive = self._arrive_at_node
        src = msg.src
        for node, down in self._members[group]:
            if node == src and not include_self:
                continue
            arrival = down.occupy(size, category)
            sim.post_at(arrival, arrive, node, msg)

    def _arrive_at_node(self, node: int, msg: Message) -> None:
        if msg.ordered_seq is None:
            self._deliver(node, msg)
            return
        # Enforce total order: deliver strictly by root sequence number.
        self._reorder[node][msg.ordered_seq] = msg
        while self._expected_seq[node] in self._reorder[node]:
            seq = self._expected_seq[node]
            self._expected_seq[node] += 1
            self._deliver(node, self._reorder[node].pop(seq))

    # ------------------------------------------------------------------

    def unicast_hops(self, src: int, dst: int) -> int:
        """Every tree route crosses four links (Figure 1a)."""
        del src, dst
        return 4

    def outgoing_links(self, node_id: int) -> list:
        """A node's single injection point: its uplink."""
        return [self._up[node_id]]

    def all_links(self) -> list[Link]:
        """All links: N up, G in-root, G root-out, N down (stage order)."""
        return [*self._up, *self._in_root, *self._root_out, *self._down]

    def broadcast_crossings(self) -> int:
        """Link crossings per full broadcast: 2 up + groups + N down."""
        return 2 + self.n_groups + self.n_nodes
