"""Point-to-point link with bandwidth (serialization) and latency.

Each link models one direction of a physical channel: a message occupies
the link for ``size_bytes / bandwidth`` ns (serialization), then arrives
``latency`` ns later.  Links are FIFO — serialization slots are granted in
send order, and since latency is constant, arrival order matches send
order.  Passing ``bandwidth=None`` models the paper's "unlimited
bandwidth" configuration (zero serialization, latency only).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Simulator
from repro.sim.stats import TrafficMeter


class Link:
    """One directed link of the interconnect.

    Args:
        sim: The simulation kernel.
        name: Human-readable identifier, e.g. ``"up[3]"`` or ``"x+(1,2)"``.
        latency: Propagation latency in ns (Table 1: 15 ns, including
            wire, synchronization, and routing).
        bandwidth: Bytes per ns (Table 1: 3.2), or ``None`` for unlimited.
        traffic: Optional meter recording every crossing.
    """

    __slots__ = (
        "sim",
        "name",
        "latency",
        "bandwidth",
        "traffic",
        "_free_at",
        "_crossings",
        "_record",
        # Reserved for the adversarial-testing perturbation layer
        # (repro.testing.perturb).  Never touched by this class; it
        # exists so a jittering subclass with ``__slots__ = ()`` can be
        # installed on a live link by ``__class__`` reassignment.
        "_perturb",
        # Reserved for the fault-injection layer (repro.faults), same
        # contract: the base class never reads it, a faulty subclass
        # with ``__slots__ = ()`` does.
        "_fault",
        # Reserved for the observability layer (repro.observe), same
        # contract: only a traced subclass with ``__slots__ = ()``
        # reads it.
        "_observe",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float,
        bandwidth: float | None,
        traffic: TrafficMeter | None = None,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be nonnegative")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive or None")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.traffic = traffic
        self._free_at = 0.0
        self._crossings = 0
        # Pre-bound recording method keeps the per-message path free of
        # attribute lookups and None checks.
        self._record = traffic.record_crossing if traffic is not None else None

    @property
    def crossings(self) -> int:
        """Number of messages that have traversed this link."""
        return self._crossings

    @property
    def busy_until(self) -> float:
        """Time at which the link's serialization slot frees up."""
        return self._free_at

    def send(
        self,
        size_bytes: int,
        category: str,
        deliver: Callable[..., None],
        *args: Any,
    ) -> float:
        """Transmit a message; invoke ``deliver(*args)`` on arrival.

        Returns the arrival time (useful for tests).
        """
        arrival = self.occupy(size_bytes, category)
        self.sim.post_at(arrival, deliver, *args)
        return arrival

    def occupy(self, size_bytes: int, category: str) -> float:
        """Claim the serialization slot and account one crossing.

        Returns the arrival time; scheduling the delivery is the caller's
        job.  This is the batched-multicast building block: a fan-out stage
        can occupy several links and post all deliveries itself without
        going through per-link callback plumbing.
        """
        sim = self.sim
        now = sim._now
        free = self._free_at
        start = now if now >= free else free
        if self.bandwidth is not None:
            serialization = size_bytes / self.bandwidth
        else:
            serialization = 0.0
        busy_until = start + serialization
        self._free_at = busy_until
        self._crossings += 1
        record = self._record
        if record is not None:
            record(category, size_bytes)
        return busy_until + self.latency
