"""Point-to-point link with bandwidth (serialization) and latency.

Each link models one direction of a physical channel: a message occupies
the link for ``size_bytes / bandwidth`` ns (serialization), then arrives
``latency`` ns later.  Links are FIFO — serialization slots are granted in
send order, and since latency is constant, arrival order matches send
order.  Passing ``bandwidth=None`` models the paper's "unlimited
bandwidth" configuration (zero serialization, latency only).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Simulator
from repro.sim.stats import TrafficMeter


class Link:
    """One directed link of the interconnect.

    Args:
        sim: The simulation kernel.
        name: Human-readable identifier, e.g. ``"up[3]"`` or ``"x+(1,2)"``.
        latency: Propagation latency in ns (Table 1: 15 ns, including
            wire, synchronization, and routing).
        bandwidth: Bytes per ns (Table 1: 3.2), or ``None`` for unlimited.
        traffic: Optional meter recording every crossing.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float,
        bandwidth: float | None,
        traffic: TrafficMeter | None = None,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be nonnegative")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive or None")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.traffic = traffic
        self._free_at = 0.0
        self._crossings = 0

    @property
    def crossings(self) -> int:
        """Number of messages that have traversed this link."""
        return self._crossings

    @property
    def busy_until(self) -> float:
        """Time at which the link's serialization slot frees up."""
        return self._free_at

    def send(
        self,
        size_bytes: int,
        category: str,
        deliver: Callable[..., None],
        *args: Any,
    ) -> float:
        """Transmit a message; invoke ``deliver(*args)`` on arrival.

        Returns the arrival time (useful for tests).
        """
        start = max(self.sim.now, self._free_at)
        if self.bandwidth is not None:
            serialization = size_bytes / self.bandwidth
        else:
            serialization = 0.0
        self._free_at = start + serialization
        arrival = start + serialization + self.latency
        self._crossings += 1
        if self.traffic is not None:
            self.traffic.record_crossing(category, size_bytes)
        self.sim.schedule_at(arrival, deliver, *args)
        return arrival
