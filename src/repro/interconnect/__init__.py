"""Interconnection networks: ordered broadcast tree and unordered torus."""

from repro.interconnect.link import Link
from repro.interconnect.message import (
    BROADCAST,
    CONTROL_MESSAGE_BYTES,
    DATA_BLOCK_BYTES,
    DATA_MESSAGE_BYTES,
    Message,
)
from repro.interconnect.topology import Interconnect
from repro.interconnect.tree import ORDERED_VNET, OrderedTreeInterconnect
from repro.interconnect.torus import TorusInterconnect, torus_dims

__all__ = [
    "BROADCAST",
    "CONTROL_MESSAGE_BYTES",
    "DATA_BLOCK_BYTES",
    "DATA_MESSAGE_BYTES",
    "Interconnect",
    "Link",
    "Message",
    "ORDERED_VNET",
    "OrderedTreeInterconnect",
    "TorusInterconnect",
    "build_interconnect",
    "torus_dims",
]


def build_interconnect(
    kind: str,
    sim,
    n_nodes: int,
    link_latency: float,
    link_bandwidth: float | None,
    traffic=None,
):
    """Factory: ``kind`` is ``"tree"`` or ``"torus"``."""
    if kind == "tree":
        return OrderedTreeInterconnect(
            sim, n_nodes, link_latency, link_bandwidth, traffic
        )
    if kind == "torus":
        return TorusInterconnect(sim, n_nodes, link_latency, link_bandwidth, traffic)
    raise ValueError(f"unknown interconnect kind {kind!r}")
