"""Interconnect interface shared by the tree and torus topologies.

Protocol controllers interact with the network only through
:meth:`Interconnect.send` (unicast) and :meth:`Interconnect.broadcast`
(tree-based multicast to all nodes), and receive messages through the
handler registered with :meth:`attach`.  Nothing above this layer knows
about switches, links, or routing.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.interconnect.message import Message
from repro.sim.kernel import Simulator
from repro.sim.stats import TrafficMeter

MessageHandler = Callable[[Message], None]


class Interconnect(abc.ABC):
    """Abstract N-node interconnection network."""

    #: True if the network delivers ordered-vnet broadcasts in a single
    #: global total order observed identically by every node (required by
    #: traditional snooping; the tree provides it, the torus does not).
    provides_total_order: bool = False

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        link_latency: float,
        link_bandwidth: float | None,
        traffic: TrafficMeter | None = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("an interconnect needs at least 2 nodes")
        self.sim = sim
        self.n_nodes = n_nodes
        self.link_latency = link_latency
        self.link_bandwidth = link_bandwidth
        self.traffic = traffic if traffic is not None else TrafficMeter()
        # Indexed by node id; None until attached.  A list keeps delivery
        # — the single busiest operation in the simulator — to one index.
        self._handlers: list[MessageHandler | None] = [None] * n_nodes

    def attach(self, node_id: int, handler: MessageHandler) -> None:
        """Register the message handler for ``node_id``."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node_id {node_id} out of range")
        if self._handlers[node_id] is not None:
            raise ValueError(f"node {node_id} already attached")
        self._handlers[node_id] = handler

    def _deliver(self, node_id: int, msg: Message) -> None:
        handler = self._handlers[node_id]
        if handler is None:
            raise RuntimeError(f"no handler attached to node {node_id}")
        handler(msg)

    @abc.abstractmethod
    def send(self, msg: Message) -> None:
        """Route a unicast message from ``msg.src`` to ``msg.dst``."""

    @abc.abstractmethod
    def broadcast(self, msg: Message, include_self: bool = False) -> None:
        """Multicast ``msg`` from ``msg.src`` to every node.

        ``include_self`` controls whether the sender receives its own copy
        (traditional snooping requires it to establish the order point).
        """

    @abc.abstractmethod
    def all_links(self) -> list:
        """Every directed link of the network, in a deterministic order.

        The order is stable for a given (topology, n_nodes): the
        adversarial layers use the position in this list as a durable
        link address (e.g. a ``FaultEvent.target``), so replays resolve
        the same physical link.
        """

    @abc.abstractmethod
    def outgoing_links(self, node_id: int) -> list:
        """The directed links on which ``node_id`` injects traffic.

        These are the links whose backlog a node can plausibly observe
        from its own network interface — what the bandwidth-adaptive
        hybrid (:mod:`repro.predict.hybrid`) watches.
        """

    @abc.abstractmethod
    def unicast_hops(self, src: int, dst: int) -> int:
        """Number of link crossings on the unicast route (for tests)."""

    def average_unicast_hops(self) -> float:
        """Mean unicast crossings over all (src, dst) pairs, self included.

        Figure 1 quotes this as 4 for the 16-node tree and 2 for the 4x4
        torus.
        """
        total = 0
        for src in range(self.n_nodes):
            for dst in range(self.n_nodes):
                total += self.unicast_hops(src, dst)
        return total / (self.n_nodes * self.n_nodes)
