"""Unordered two-dimensional bidirectional torus (Figure 1b).

Directly connected, glueless: each node links to four neighbours with
wraparound.  Unicast uses deterministic dimension-ordered routing (X then
Y, shorter wrap direction, ties broken toward increasing coordinates).
Broadcasts use bandwidth-efficient tree-based multicast: a BFS spanning
tree rooted at the source, so an N-node broadcast crosses exactly N-1
links (the Theta(n) cost Question 5 discusses).

The torus provides *no* request total order — two broadcasts may be
observed in different orders by different nodes — which is precisely why
traditional snooping cannot run on it and why TokenB can.
"""

from __future__ import annotations

from collections import deque

from repro.interconnect.link import Link
from repro.interconnect.message import Message
from repro.interconnect.topology import Interconnect
from repro.sim.kernel import Simulator
from repro.sim.stats import TrafficMeter


def torus_dims(n_nodes: int) -> tuple[int, int]:
    """Pick the most square (width, height) factorization of ``n_nodes``.

    16 -> (4, 4); 64 -> (8, 8); 8 -> (2, 4).
    """
    width = int(n_nodes**0.5)
    while n_nodes % width:
        width -= 1
    return width, n_nodes // width


class TorusInterconnect(Interconnect):
    """2-D bidirectional torus with dimension-ordered routing."""

    provides_total_order = False

    #: Deterministic neighbour exploration order for routing/multicast.
    _DIRECTIONS = ("x+", "x-", "y+", "y-")

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        link_latency: float,
        link_bandwidth: float | None,
        traffic: TrafficMeter | None = None,
    ) -> None:
        super().__init__(sim, n_nodes, link_latency, link_bandwidth, traffic)
        self.width, self.height = torus_dims(n_nodes)
        # Directed links keyed by (node, direction).
        self._links: dict[tuple[int, str], Link] = {}
        for node in range(n_nodes):
            for direction in self._DIRECTIONS:
                self._links[(node, direction)] = Link(
                    sim,
                    f"{direction}({node})",
                    link_latency,
                    link_bandwidth,
                    self.traffic,
                )
        # Multicast spanning trees, computed lazily per source:
        # children[source][vertex] -> list of (direction, neighbour).
        self._multicast_children: dict[int, dict[int, list[tuple[str, int]]]] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        return (y % self.height) * self.width + (x % self.width)

    def neighbour(self, node: int, direction: str) -> int:
        x, y = self.coords(node)
        if direction == "x+":
            return self.node_at(x + 1, y)
        if direction == "x-":
            return self.node_at(x - 1, y)
        if direction == "y+":
            return self.node_at(x, y + 1)
        if direction == "y-":
            return self.node_at(x, y - 1)
        raise ValueError(f"bad direction {direction!r}")

    def _dimension_steps(self, delta: int, extent: int, pos: str, neg: str) -> list[str]:
        """Directions to travel ``delta`` (mod ``extent``) along one axis."""
        forward = delta % extent
        backward = extent - forward if forward else 0
        if forward == 0:
            return []
        if forward <= backward:
            return [pos] * forward
        return [neg] * backward

    def route(self, src: int, dst: int) -> list[str]:
        """Dimension-ordered route as a list of directions (X then Y)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        steps = self._dimension_steps(dx - sx, self.width, "x+", "x-")
        steps += self._dimension_steps(dy - sy, self.height, "y+", "y-")
        return steps

    def unicast_hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    # ------------------------------------------------------------------
    # Unicast
    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        if msg.is_broadcast():
            raise ValueError("use broadcast() for broadcast messages")
        route = self.route(msg.src, msg.dst)
        if not route:
            # Same node: deliver locally without touching the network.
            self.sim.schedule(0.0, self._deliver, msg.dst, msg)
            return
        self._forward_unicast(msg, msg.src, route, 0)

    def _forward_unicast(
        self, msg: Message, at_node: int, route: list[str], hop: int
    ) -> None:
        direction = route[hop]
        next_node = self.neighbour(at_node, direction)
        if hop + 1 == len(route):
            self._links[(at_node, direction)].send(
                msg.size_bytes, msg.category, self._deliver, next_node, msg
            )
        else:
            self._links[(at_node, direction)].send(
                msg.size_bytes,
                msg.category,
                self._forward_unicast,
                msg,
                next_node,
                route,
                hop + 1,
            )

    # ------------------------------------------------------------------
    # Broadcast (tree-based multicast)
    # ------------------------------------------------------------------

    def _spanning_tree(self, source: int) -> dict[int, list[tuple[str, int]]]:
        children = self._multicast_children.get(source)
        if children is not None:
            return children
        children = {node: [] for node in range(self.n_nodes)}
        visited = {source}
        frontier = deque([source])
        while frontier:
            vertex = frontier.popleft()
            for direction in self._DIRECTIONS:
                nbr = self.neighbour(vertex, direction)
                if nbr not in visited:
                    visited.add(nbr)
                    children[vertex].append((direction, nbr))
                    frontier.append(nbr)
        self._multicast_children[source] = children
        return children

    def broadcast(self, msg: Message, include_self: bool = False) -> None:
        if include_self:
            self.sim.schedule(0.0, self._deliver, msg.src, msg)
        self._fanout_multicast(msg, msg.src, self._spanning_tree(msg.src))

    def _fanout_multicast(
        self,
        msg: Message,
        at_node: int,
        children: dict[int, list[tuple[str, int]]],
    ) -> None:
        for direction, child in children[at_node]:
            self._links[(at_node, direction)].send(
                msg.size_bytes,
                msg.category,
                self._multicast_arrive,
                msg,
                child,
                children,
            )

    def _multicast_arrive(
        self,
        msg: Message,
        node: int,
        children: dict[int, list[tuple[str, int]]],
    ) -> None:
        self._deliver(node, msg)
        self._fanout_multicast(msg, node, children)

    def broadcast_crossings(self) -> int:
        """Link crossings per broadcast: the N-1 spanning-tree edges."""
        return self.n_nodes - 1
