"""Unordered two-dimensional bidirectional torus (Figure 1b).

Directly connected, glueless: each node links to four neighbours with
wraparound.  Unicast uses deterministic dimension-ordered routing (X then
Y, shorter wrap direction, ties broken toward increasing coordinates).
Broadcasts use bandwidth-efficient tree-based multicast: a BFS spanning
tree rooted at the source, so an N-node broadcast crosses exactly N-1
links (the Theta(n) cost Question 5 discusses).

The torus provides *no* request total order — two broadcasts may be
observed in different orders by different nodes — which is precisely why
traditional snooping cannot run on it and why TokenB can.

Hot-path notes: multicast fan-out is batched per node.  Each fan-out step
resolves a precomputed, link-resolved spanning-tree plan (no per-hop dict
lookups or closure plumbing) and posts its children's arrivals directly on
the kernel's tuple heap.  The limited-bandwidth path preserves the exact
``(time, seq)`` event ordering of the reference hop-by-hop implementation.
With unlimited link bandwidth the whole subtree's arrival times are
precomputed at broadcast time and every delivery is posted up front —
serialization is zero, so no intermediate fan-out state can affect the
timestamps; see :meth:`_broadcast_unlimited` for the (tie-breaking only)
caveat on seq assignment.
"""

from __future__ import annotations

from collections import deque

from repro.interconnect.link import Link
from repro.interconnect.message import Message
from repro.interconnect.topology import Interconnect
from repro.sim.kernel import Simulator
from repro.sim.stats import TrafficMeter


def torus_dims(n_nodes: int) -> tuple[int, int]:
    """Pick the most square (width, height) factorization of ``n_nodes``.

    16 -> (4, 4); 64 -> (8, 8); 8 -> (2, 4).
    """
    width = int(n_nodes**0.5)
    while n_nodes % width:
        width -= 1
    return width, n_nodes // width


class TorusInterconnect(Interconnect):
    """2-D bidirectional torus with dimension-ordered routing."""

    provides_total_order = False

    #: Deterministic neighbour exploration order for routing/multicast.
    _DIRECTIONS = ("x+", "x-", "y+", "y-")

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        link_latency: float,
        link_bandwidth: float | None,
        traffic: TrafficMeter | None = None,
    ) -> None:
        super().__init__(sim, n_nodes, link_latency, link_bandwidth, traffic)
        self.width, self.height = torus_dims(n_nodes)
        # Directed links keyed by (node, direction).
        self._links: dict[tuple[int, str], Link] = {}
        for node in range(n_nodes):
            for direction in self._DIRECTIONS:
                self._links[(node, direction)] = Link(
                    sim,
                    f"{direction}({node})",
                    link_latency,
                    link_bandwidth,
                    self.traffic,
                )
        # Multicast spanning-tree plans, computed lazily per source.
        # Batched form: plan[vertex] -> tuple of (link, child) pairs.
        self._multicast_plan: dict[int, tuple[tuple[Link, int], ...]] = {}
        # Unlimited-bandwidth fast path: flat BFS order of the whole
        # subtree as (depth, node, link) triples, plus the tree depth.
        self._flat_plan: dict[int, tuple[tuple[tuple[int, int, Link], ...], int]] = {}
        # Unicast route plans: (src, dst) -> tuple of (link, next_node).
        self._route_plan: dict[tuple[int, int], tuple[tuple[Link, int], ...]] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        return (y % self.height) * self.width + (x % self.width)

    def neighbour(self, node: int, direction: str) -> int:
        x, y = self.coords(node)
        if direction == "x+":
            return self.node_at(x + 1, y)
        if direction == "x-":
            return self.node_at(x - 1, y)
        if direction == "y+":
            return self.node_at(x, y + 1)
        if direction == "y-":
            return self.node_at(x, y - 1)
        raise ValueError(f"bad direction {direction!r}")

    def _dimension_steps(self, delta: int, extent: int, pos: str, neg: str) -> list[str]:
        """Directions to travel ``delta`` (mod ``extent``) along one axis."""
        forward = delta % extent
        backward = extent - forward if forward else 0
        if forward == 0:
            return []
        if forward <= backward:
            return [pos] * forward
        return [neg] * backward

    def route(self, src: int, dst: int) -> list[str]:
        """Dimension-ordered route as a list of directions (X then Y)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        steps = self._dimension_steps(dx - sx, self.width, "x+", "x-")
        steps += self._dimension_steps(dy - sy, self.height, "y+", "y-")
        return steps

    def unicast_hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def outgoing_links(self, node_id: int) -> list[Link]:
        """A node's four outgoing channels (one per direction)."""
        return [
            self._links[(node_id, direction)]
            for direction in self._DIRECTIONS
        ]

    def all_links(self) -> list[Link]:
        """All 4N directed links, in (node, direction) creation order."""
        return list(self._links.values())

    # ------------------------------------------------------------------
    # Unicast
    # ------------------------------------------------------------------

    def _unicast_plan(self, src: int, dst: int) -> tuple[tuple[Link, int], ...]:
        plan = self._route_plan.get((src, dst))
        if plan is None:
            hops = []
            at_node = src
            for direction in self.route(src, dst):
                next_node = self.neighbour(at_node, direction)
                hops.append((self._links[(at_node, direction)], next_node))
                at_node = next_node
            plan = tuple(hops)
            self._route_plan[(src, dst)] = plan
        return plan

    def send(self, msg: Message) -> None:
        if msg.is_broadcast():
            raise ValueError("use broadcast() for broadcast messages")
        plan = self._unicast_plan(msg.src, msg.dst)
        if not plan:
            # Same node: deliver locally without touching the network.
            self.sim.post(0.0, self._deliver, msg.dst, msg)
            return
        self._forward_unicast(msg, plan, 0)

    def _forward_unicast(
        self, msg: Message, plan: tuple[tuple[Link, int], ...], hop: int
    ) -> None:
        link, next_node = plan[hop]
        arrival = link.occupy(msg.size_bytes, msg.category)
        if hop + 1 == len(plan):
            self.sim.post_at(arrival, self._deliver, next_node, msg)
        else:
            self.sim.post_at(arrival, self._forward_unicast, msg, plan, hop + 1)

    # ------------------------------------------------------------------
    # Broadcast (tree-based multicast)
    # ------------------------------------------------------------------

    def _spanning_tree(self, source: int) -> dict[int, list[tuple[str, int]]]:
        """BFS spanning tree: vertex -> [(direction, child)] (for tests)."""
        children: dict[int, list[tuple[str, int]]] = {
            node: [] for node in range(self.n_nodes)
        }
        visited = {source}
        frontier = deque([source])
        while frontier:
            vertex = frontier.popleft()
            for direction in self._DIRECTIONS:
                nbr = self.neighbour(vertex, direction)
                if nbr not in visited:
                    visited.add(nbr)
                    children[vertex].append((direction, nbr))
                    frontier.append(nbr)
        return children

    def _multicast_plans(
        self, source: int
    ) -> tuple[tuple[tuple[Link, int], ...], ...]:
        """Link-resolved spanning-tree fan-out plan rooted at ``source``."""
        plan = self._multicast_plan.get(source)
        if plan is None:
            children = self._spanning_tree(source)
            plan = tuple(
                tuple(
                    (self._links[(vertex, direction)], child)
                    for direction, child in children[vertex]
                )
                for vertex in range(self.n_nodes)
            )
            self._multicast_plan[source] = plan

            # Flat subtree order for the unlimited-bandwidth fast path:
            # BFS over the plan, recording (depth, node, inbound link) in
            # exactly the order the hop-by-hop fan-out would schedule the
            # arrivals (per depth level, parents in their own arrival
            # order, children in direction order).
            flat: list[tuple[int, int, Link]] = []
            level = [source]
            depth = 0
            while level:
                depth += 1
                nxt: list[int] = []
                for vertex in level:
                    for link, child in plan[vertex]:
                        flat.append((depth, child, link))
                        nxt.append(child)
                level = nxt
            self._flat_plan[source] = (tuple(flat), depth)
        return plan

    def broadcast(self, msg: Message, include_self: bool = False) -> None:
        plan = self._multicast_plans(msg.src)
        if include_self:
            self.sim.post(0.0, self._deliver, msg.src, msg)
        if self.link_bandwidth is None:
            self._broadcast_unlimited(msg)
        else:
            self._fanout_multicast(msg, msg.src, plan)

    def _fanout_multicast(
        self,
        msg: Message,
        at_node: int,
        plan: tuple[tuple[tuple[Link, int], ...], ...],
    ) -> None:
        # Batched fan-out: claim every child link's serialization slot
        # inline (same float ops as Link.occupy, serialization hoisted —
        # all torus links share one bandwidth) and account the traffic in
        # a single batched call.
        hops = plan[at_node]
        if not hops:
            return
        sim = self.sim
        post_at = sim.post_at
        arrive = self._multicast_arrive
        size = msg.size_bytes
        now = sim._now
        serialization = size / self.link_bandwidth
        latency = self.link_latency
        for link, child in hops:
            free = link._free_at
            start = now if now >= free else free
            busy_until = start + serialization
            link._free_at = busy_until
            link._crossings += 1
            post_at(busy_until + latency, arrive, msg, child, plan)
        self.traffic.record_crossings(msg.category, size, len(hops))

    def _multicast_arrive(
        self,
        msg: Message,
        node: int,
        plan: tuple[tuple[tuple[Link, int], ...], ...],
    ) -> None:
        # Deliver, then fan out to this node's subtree in one event
        # (this fires once per node per broadcast).
        handler = self._handlers[node]
        if handler is None:
            raise RuntimeError(f"no handler attached to node {node}")
        handler(msg)
        if plan[node]:
            self._fanout_multicast(msg, node, plan)

    def _broadcast_unlimited(self, msg: Message) -> None:
        """Post the whole subtree's deliveries up front (zero serialization).

        With unlimited bandwidth a link's serialization slot is always
        free, so the arrival at depth ``d`` is a pure function of the
        broadcast time — no intermediate fan-out event can perturb it.
        The arrival chain reproduces the hop-by-hop float arithmetic
        (each depth re-anchored by ``post_at``'s delay form at the
        previous depth's arrival) so timestamps are bit-identical to the
        reference implementation.

        Seq assignment differs from hop-by-hop fan-out: all deliveries
        draw seqs at broadcast time rather than as parents arrive, so if
        an unrelated event lands on *exactly* the same timestamp as a
        deeper delivery, the tie can break the other way.  Ordering
        stays fully deterministic run-to-run either way (and the entire
        figure-suite grid was verified bit-identical against the
        reference); the determinism suite pins the fast path's outputs.
        """
        flat, max_depth = self._flat_plan[msg.src]
        sim = self.sim
        post_at = sim.post_at
        deliver = self._deliver
        latency = self.link_latency
        arrivals = []
        a = sim._now
        for _ in range(max_depth):
            hop = a + latency
            a = a + (hop - a)
            arrivals.append(a)
        size = msg.size_bytes
        category = msg.category
        for depth, node, link in flat:
            link._crossings += 1
            post_at(arrivals[depth - 1], deliver, node, msg)
        self.traffic.record_crossings(category, size, len(flat))

    def broadcast_crossings(self) -> int:
        """Link crossings per broadcast: the N-1 spanning-tree edges."""
        return self.n_nodes - 1
