"""``run_campaign`` — the one-call compatibility face of the split.

The monolithic runner this module used to hold is now two layers:
:class:`~repro.campaign.scheduler.CampaignScheduler` (store diffing,
retry, resume, heartbeats) and :mod:`~repro.campaign.transports`
(serial / local pool / socket fleet execution).  Every historical call
site — the benches, the explorer's ``--jobs`` mode, the differential
harness, ``fork_family`` campaigns, and the CLI — keeps calling
:func:`run_campaign` with the same signature and gets byte-identical
stores; the function now just picks a transport and delegates.  New
code that wants a different execution strategy (a persistent daemon, a
remote fleet) composes the layers directly.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.campaign.scheduler import (  # noqa: F401 — historical exports
    CampaignScheduler,
    HeartbeatWriter,
    ProgressFn,
    RunReport,
    resolve_jobs,
)
from repro.campaign.spec import CampaignSpec, ScenarioCase
from repro.campaign.store import CampaignStore
from repro.campaign.transports import ProcessPoolTransport, SerialTransport


def run_campaign(
    spec_or_cases: CampaignSpec | Sequence[ScenarioCase],
    store: CampaignStore,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    max_tasks_per_child: int | None = None,
    compact: bool = True,
    heartbeat: "str | os.PathLike | None" = None,
) -> RunReport:
    """Execute every case not yet in ``store``; return what happened.

    ``jobs=1`` runs in-process via :class:`SerialTransport` (the
    debugging path); more fans out over a :class:`ProcessPoolTransport`
    sized by :func:`resolve_jobs` (``None`` = all usable cores, capped
    by the missing-case count).  ``heartbeat`` names a JSON file
    atomically rewritten on every completion (see
    :class:`HeartbeatWriter`); ``python -m repro.campaign status
    --watch`` tails it for live progress.
    """
    scheduler = CampaignScheduler(
        store, progress=progress, compact=compact, heartbeat=heartbeat
    )
    cases = scheduler.cases_of(spec_or_cases)
    jobs = resolve_jobs(jobs, len(store.missing(cases)))
    if jobs == 1:
        transport = SerialTransport(store)
    else:
        transport = ProcessPoolTransport(
            store, jobs, max_tasks_per_child=max_tasks_per_child
        )
    try:
        return scheduler.run(cases, transport)
    finally:
        transport.shutdown()
