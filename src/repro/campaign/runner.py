"""The campaign runner: deterministic partitioning over a worker pool.

:func:`run_campaign` is the single execution path for every sweep in the
repo — the figure-bench prewarm, the adversarial schedule explorer's
``--jobs`` mode, the differential conformance harness, and the CLI all
funnel through here.  Contract:

* **Incremental**: only cases missing from the store execute; a
  completed campaign re-runs as a 100% store hit.
* **Deterministic outputs under arbitrary scheduling**: missing cases
  are submitted in spec order to the pool's shared queue, so *which*
  worker executes a scenario depends on completion timing — but every
  result is content-addressed and compaction canonicalizes the store,
  so the record set and the final shard bytes are a pure function of
  (spec, code version), independent of jobs or scheduling.
* **Bounded per-worker memory**: workers append results straight to
  their own store shard and hand back only ``(key, ok, error)``
  triples, so execution never accumulates payloads in worker RAM;
  ``max_tasks_per_child`` (spawn context) additionally recycles worker
  processes for leak isolation.  (The parent's store *index* does hold
  all records once loaded — parent memory scales with store size, a
  known limit well past every current campaign.)
* **Serial fallback**: ``jobs=1`` runs everything in-process, in spec
  order — the debugging path, and the path that keeps the explorer's
  on-violation shrink/repro flow deterministic.

The worker bootstrap below is the one former home of the ProcessPool
prewarm logic that ``benchmarks/common.py`` and ``benchmarks/conftest``
each reimplemented: workers bind to the store in the initializer and
publish every result with a per-record flush, so a killed pool loses at
most one in-flight line per worker (see :mod:`repro.campaign.store`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Sequence

from repro.campaign.executors import execute_case
from repro.campaign.spec import CampaignSpec, ScenarioCase
from repro.campaign.store import CampaignStore, make_record

#: progress(done, total, case, ok, error) — called after each *executed*
#: case in completion order; ``done`` starts at the cached count.
ProgressFn = Callable[[int, int, ScenarioCase, bool, "str | None"], None]


@dataclasses.dataclass
class RunReport:
    """What one :func:`run_campaign` invocation did."""

    total: int
    executed: int
    cached: int
    failures: list[dict] = dataclasses.field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


#: Pool respawns after a worker crash (``BrokenProcessPool``) before the
#: still-unfinished cases are surfaced as failures.
_POOL_RETRIES = 2


class HeartbeatWriter:
    """Atomic progress beacon for ``campaign status --watch``.

    One JSON object per beat, written tmp-then-:func:`os.replace` so a
    concurrent reader never sees a torn file.  Beats happen on every
    completion plus once at start and once at the end (``finished``
    flips true), so a watcher polling the file sees monotone progress
    and a definitive terminal state even for a 100%-cached run.
    """

    def __init__(self, path, total: int, cached: int, jobs: int) -> None:
        self.path = Path(path)
        self.total = total
        self.cached = cached
        self.jobs = jobs
        self.failures = 0
        self._streams: dict[str, int] = {}
        self._started = time.time()
        self._t0 = time.perf_counter()

    def beat(self, done: int, stream: str | None = None,
             ok: bool = True, finished: bool = False) -> None:
        if stream is not None:
            self._streams[stream] = self._streams.get(stream, 0) + 1
        if not ok:
            self.failures += 1
        elapsed = time.perf_counter() - self._t0
        executed = sum(self._streams.values())
        rate = executed / elapsed if elapsed > 0 else 0.0
        remaining = self.total - done
        payload = {
            "total": self.total,
            "completed": done,
            "cached": self.cached,
            "executed": executed,
            "failures": self.failures,
            "jobs": self.jobs,
            "started_at": self._started,
            "updated_at": time.time(),
            "elapsed_s": round(elapsed, 3),
            "throughput_per_s": round(rate, 4),
            "eta_s": round(remaining / rate, 1) if rate > 0 else None,
            "shards": {
                name: {
                    "completed": count,
                    "per_s": round(count / elapsed, 4) if elapsed > 0 else 0.0,
                }
                for name, count in sorted(self._streams.items())
            },
            "finished": finished,
        }
        tmp = self.path.with_suffix(".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)


def resolve_jobs(jobs: int | None, n_cases: int) -> int:
    """Auto (``None``) = one worker per core, capped by the case count."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, max(n_cases, 1)))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_worker_store: CampaignStore | None = None
_worker_stream: str = "serial"


def _worker_init(root: str, n_shards: int) -> None:
    """Bootstrap one pool worker: bind its private store stream.

    Runs once per worker process.  The executor registry (and thus the
    simulator) is imported lazily on first case, which under the default
    fork context is already resident from the parent — the prewarm
    effect the old benchmark pool got by importing ``benchmarks.common``
    in every worker.
    """
    global _worker_store, _worker_stream
    _worker_store = CampaignStore(root, n_shards=n_shards)
    _worker_stream = f"worker-{os.getpid()}"


def _worker_run(
    payload: tuple[str, dict, str],
) -> tuple[str, bool, str | None, str]:
    """Execute one case in a pool worker and publish its record."""
    kind, params, fingerprint = payload
    case = ScenarioCase(kind, params, fingerprint=fingerprint)
    try:
        result = execute_case(case)
    except Exception as exc:  # noqa: BLE001 — reported, not swallowed
        return case.key, False, f"{type(exc).__name__}: {exc}", _worker_stream
    _worker_store.append(make_record(case, result), stream=_worker_stream)
    return case.key, True, None, _worker_stream


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn-context children via PYTHONPATH."""
    import repro

    src = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src + (os.pathsep + existing if existing else "")
        )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def run_campaign(
    spec_or_cases: CampaignSpec | Sequence[ScenarioCase],
    store: CampaignStore,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    max_tasks_per_child: int | None = None,
    compact: bool = True,
    heartbeat: "str | os.PathLike | None" = None,
) -> RunReport:
    """Execute every case not yet in ``store``; return what happened.

    Failures (executor exceptions, as opposed to oracle violations,
    which are ordinary *results* for the ``explore`` kind) are listed in
    the report and their cases left unrecorded, so a rerun retries them.

    ``heartbeat`` names a JSON file atomically rewritten on every
    completion (see :class:`HeartbeatWriter`); ``python -m
    repro.campaign status --watch`` tails it for live progress.
    """
    if isinstance(spec_or_cases, CampaignSpec):
        cases = spec_or_cases.cases()
    else:
        cases = list(spec_or_cases)
    started = time.perf_counter()
    missing = store.missing(cases)
    total = len(cases)
    done = total - len(missing)
    failures: list[dict] = []
    jobs = resolve_jobs(jobs, len(missing))
    beacon = None
    if heartbeat is not None:
        beacon = HeartbeatWriter(heartbeat, total, done, jobs)
        beacon.beat(done)

    if missing and jobs == 1:
        for case in missing:
            try:
                result = execute_case(case)
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    {"key": case.key, "error": f"{type(exc).__name__}: {exc}"}
                )
                done += 1
                if beacon is not None:
                    beacon.beat(done, stream="serial", ok=False)
                if progress is not None:
                    progress(done, total, case, False, failures[-1]["error"])
                continue
            store.append(make_record(case, result), stream="serial")
            done += 1
            if beacon is not None:
                beacon.beat(done, stream="serial")
            if progress is not None:
                progress(done, total, case, True, None)
    elif missing:
        # Spawn-default platforms (macOS/Windows) rebuild sys.path from
        # the environment, so make ``repro`` importable unconditionally
        # — harmless under fork, required everywhere else.
        _ensure_child_import_path()
        pool_kwargs: dict = dict(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(str(store.root), store.n_shards),
        )
        if max_tasks_per_child is not None:
            # Worker recycling needs a fresh interpreter per batch; the
            # fork context does not support it.
            import multiprocessing

            pool_kwargs["mp_context"] = multiprocessing.get_context("spawn")
            pool_kwargs["max_tasks_per_child"] = max_tasks_per_child

        # A worker dying mid-case (OOM kill, segfault, os._exit) breaks
        # the whole pool: every in-flight future raises
        # BrokenProcessPool.  Resumability makes a retry safe — workers
        # flush each record as a line in their pending shard, so
        # reloading the store recovers everything completed before the
        # crash, and only the genuinely unfinished cases are
        # resubmitted to a fresh pool.  After _POOL_RETRIES respawns the
        # still-unfinished cases surface as ordinary failures.
        remaining = list(missing)
        for attempt in range(_POOL_RETRIES + 1):
            try:
                by_case = {}
                with ProcessPoolExecutor(**pool_kwargs) as pool:
                    # Submission in spec order; workers pull from the
                    # shared queue, and content-addressing + compaction
                    # make the final store independent of which worker
                    # ran what.
                    for case in remaining:
                        future = pool.submit(
                            _worker_run,
                            (case.kind, case.params, case.fingerprint),
                        )
                        by_case[future] = case
                    for future in as_completed(by_case):
                        case = by_case[future]
                        key, ok, error, stream = future.result()
                        if not ok:
                            failures.append({"key": key, "error": error})
                        done += 1
                        if beacon is not None:
                            beacon.beat(done, stream=stream, ok=ok)
                        if progress is not None:
                            progress(done, total, case, ok, error)
                remaining = []
                break
            except BrokenProcessPool:
                # Mark this round's in-flight cases unfinished: reload
                # the store (picking up the crashed pool's pending
                # shards) and keep whatever is still missing, minus the
                # cases that already failed in an orderly way.
                store.close()
                store.load()
                failed_keys = {failure["key"] for failure in failures}
                remaining = [
                    case
                    for case in store.missing(remaining)
                    if case.key not in failed_keys
                ]
                done = total - len(remaining)
                if not remaining:
                    break
        if remaining:
            failures.extend(
                {
                    "key": case.key,
                    "error": (
                        "BrokenProcessPool: a worker died abruptly and "
                        f"the pool was respawned {_POOL_RETRIES} times "
                        "without finishing this case"
                    ),
                }
                for case in remaining
            )

    if beacon is not None:
        beacon.beat(done, finished=True)
    store.close()
    if compact and store.dirty:
        # compact() re-reads everything on disk, which also folds the
        # workers' pending shards into the parent's index.
        store.compact()
    elif missing and jobs > 1:
        # No compaction: an explicit reload picks up worker records.
        store.load()
    return RunReport(
        total=total,
        executed=len(missing) - len(failures),
        cached=total - len(missing),
        failures=failures,
        elapsed_s=round(time.perf_counter() - started, 3),
    )
