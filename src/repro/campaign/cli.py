"""``python -m repro.campaign`` — run, inspect, and report campaigns.

::

    python -m repro.campaign run --spec figures --jobs 8
    python -m repro.campaign run --spec explorer --seeds 64 --jobs 4
    python -m repro.campaign status --spec figures
    python -m repro.campaign status --spec figures --watch
    python -m repro.campaign report --spec figures
    python -m repro.campaign report --spec predict --format csv
    python -m repro.campaign compact --spec figures
    python -m repro.campaign compact --spec figures --prune-stale
    python -m repro.campaign serve --address 127.0.0.1:7741
    python -m repro.campaign submit --address 127.0.0.1:7741 --spec smoke
    python -m repro.campaign worker --address 127.0.0.1:7742

``report`` renders figure-style text by default; ``--format
csv|markdown|json`` exports one row per scenario instead (simulate:
runtime/traffic per configuration; explore: oracle outcomes;
differential: agreement).  ``status --watch`` tails the heartbeat file
``run`` rewrites after every completed scenario (per-shard throughput,
completion counts, ETA) and exits when the run reports finished.

``run`` is incremental: killing it mid-campaign loses nothing but the
in-flight scenarios, and the rerun executes only what the store is
missing (``--expect-cached`` turns "nothing should execute" into an
exit-code assertion, which CI uses to prove store round-trips).  Specs
are named presets (:data:`repro.campaign.presets.SPEC_BUILDERS`) or a
JSON file holding a serialized :class:`CampaignSpec`.

``serve`` starts the persistent campaign service
(:mod:`repro.campaign.service`): ``submit`` sends it a spec over the
line-JSON socket and streams the same beats ``status --watch`` tails;
identical concurrent submissions are deduplicated into one run, and
submissions past the queue bound get an explicit backpressure exit
(:data:`EXIT_BUSY`).  ``worker`` attaches a pull-based fleet worker to
a campaign serving batches over a socket transport.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign import presets
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, code_fingerprint
from repro.campaign.store import CampaignStore

#: run exit codes beyond 0/1 (violations) — distinct so CI can assert.
EXIT_EXECUTOR_FAILURE = 2
EXIT_NOT_CACHED = 3
#: submit: the service answered with explicit backpressure.
EXIT_BUSY = 4


def resolve_spec(name: str, args) -> CampaignSpec:
    path = Path(name)
    if name.endswith(".json") or path.is_file():
        return CampaignSpec.from_dict(json.loads(path.read_text()))
    try:
        return presets.build_spec(
            name, seeds=args.seeds, seed_base=args.seed_base, smoke=args.smoke
        )
    except KeyError:
        known = ", ".join(sorted(presets.SPEC_BUILDERS))
        raise SystemExit(f"unknown spec {name!r} (known: {known}, or a .json file)")


def resolve_store(spec: CampaignSpec, args) -> CampaignStore:
    root = args.store or spec.default_store or f".campaign_store/{spec.name}"
    return CampaignStore(root)


def _scan_violations(kind: str, cases, store: CampaignStore) -> list[str]:
    """Oracle violations / conformance mismatches recorded in results."""
    violations = []
    for case in cases:
        record = store.get(case.key)
        if record is None:
            continue
        result = record["result"]
        if kind == "explore" and not result.get("ok", True):
            violations.append(
                f"{case.key[:12]} {result.get('violation_type')}: "
                f"{result.get('violation_message')}"
            )
        elif kind == "differential" and not result.get("agreed", True):
            bad = {
                k: v for k, v in result.get("mismatches", {}).items() if v
            }
            violations.append(
                f"{case.key[:12]} workload={result.get('workload')} "
                f"seed={result.get('seed')}: {bad}"
            )
    return violations


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_run(args) -> int:
    spec = resolve_spec(args.spec, args)
    store = resolve_store(spec, args)
    # Hash the scenario documents once; every later step reuses them.
    cases = spec.cases()
    total = len(cases)

    def progress(done, _total, case, ok, error):
        if args.quiet:
            return
        status = "ok" if ok else f"FAILED({error})"
        print(f"[{done:>5}/{_total}] {case.kind} {case.key[:12]}: {status}",
              flush=True)

    # The heartbeat lives beside the shards so `status --watch` finds it
    # from the spec alone; "-" disables it (e.g. read-only store mounts).
    heartbeat = None
    if args.heartbeat != "-":
        heartbeat = args.heartbeat or Path(store.root) / "heartbeat.json"
    report = run_campaign(
        cases,
        store,
        jobs=args.jobs,
        progress=progress,
        max_tasks_per_child=args.max_tasks_per_child,
        heartbeat=heartbeat,
    )
    print(
        f"campaign {spec.name!r}: {report.total} scenarios, "
        f"{report.executed} executed, {report.cached} cached "
        f"({report.cached / max(total, 1):.0%} store hit), "
        f"{len(report.failures)} failures, {report.elapsed_s}s "
        f"-> {store.root}"
    )
    for failure in report.failures[:5]:
        print(f"  failure {failure['key'][:12]}: {failure['error']}")
    violations = _scan_violations(spec.kind, cases, store)
    if violations:
        print(f"{len(violations)} scenario violations recorded:")
        for line in violations[:5]:
            print(f"  {line}")
    if report.failures:
        return EXIT_EXECUTOR_FAILURE
    if args.expect_cached and report.executed:
        print(
            f"--expect-cached: {report.executed} scenarios executed "
            "(store was not a 100% hit)"
        )
        return EXIT_NOT_CACHED
    return 1 if violations else 0


def cmd_compact(args) -> int:
    """Expose the store's atomic compaction as a subcommand.

    Folds pending worker shards into canonical sorted shard files and
    drops duplicate/corrupt lines; ``--prune-stale`` additionally drops
    records whose code fingerprint no longer matches the current
    sources.  Compaction is atomic (tmp + rename per shard), so a
    concurrent reader never sees a torn store.
    """
    spec = resolve_spec(args.spec, args)
    store = resolve_store(spec, args)
    before = store.stats()
    stale = len(store.stale_records())
    store.compact(prune_stale=args.prune_stale)
    after = store.stats()
    pruned = f", {stale} stale records pruned" if args.prune_stale else ""
    print(
        f"compacted {store.root}: {before['records']} -> "
        f"{after['records']} records, {before['pending_files']} pending "
        f"files folded into {after['shard_files']} shards, "
        f"{before['corrupt_lines']} torn lines dropped{pruned}"
    )
    return 0


def cmd_status(args) -> int:
    spec = resolve_spec(args.spec, args)
    store = resolve_store(spec, args)
    if args.watch:
        return _watch_heartbeat(Path(store.root) / "heartbeat.json",
                                args.interval)
    cases = spec.cases()
    missing = store.missing(cases)
    stats = store.stats()
    stale = len(store.stale_records())
    print(f"campaign:    {spec.name} (kind={spec.kind})")
    print(f"store:       {store.root}")
    print(f"fingerprint: {code_fingerprint()}")
    print(f"scenarios:   {len(cases)} declared, "
          f"{len(cases) - len(missing)} complete, {len(missing)} missing")
    print(f"records:     {stats['records']} total, {stale} stale-fingerprint")
    print(f"files:       {stats['shard_files']} shards, "
          f"{stats['pending_files']} pending, "
          f"{stats['corrupt_lines']} torn lines skipped")
    return 0


def _watch_heartbeat(path: Path, interval: float) -> int:
    """Tail a runner heartbeat file until it reports ``finished``.

    The runner rewrites the file atomically (tmp + rename), so each
    poll sees one complete JSON object; a line prints only when the
    beat changed, so a stalled campaign is visibly stalled.  A torn or
    half-written beat (a writer without atomic rename, an NFS mount
    mid-sync) is tolerated like the store tolerates torn lines: skip
    the poll, keep watching.  Exits 0 when the run finishes, nonzero
    on Ctrl-C.
    """
    import time

    last = None
    try:
        while True:
            try:
                beat = json.loads(path.read_text())
                key = (beat["completed"], beat["failures"], beat["finished"])
            except (OSError, ValueError, KeyError, TypeError):
                if last is None:
                    print(f"waiting for {path} ...", flush=True)
                    last = "waiting"
                time.sleep(interval)
                continue
            if key != last:
                last = key
                print(_beat_line(beat), flush=True)
            if beat.get("finished"):
                print("campaign finished", flush=True)
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 130


def _beat_line(beat: dict) -> str:
    """One watcher line for a heartbeat payload (file or socket beat)."""
    eta = beat.get("eta_s")
    per_s = beat.get("throughput_per_s", 0.0)
    shards = beat.get("shards", {})
    return (
        f"{beat['completed']:>5}/{beat['total']} "
        f"({beat['completed'] / max(beat['total'], 1):.0%}) "
        f"{per_s:.2f}/s over {len(shards) or 1} shard(s), "
        f"{beat['failures']} failures, "
        f"eta {'-' if eta is None else f'{eta:.0f}s'}"
    )


# ----------------------------------------------------------------------
# Service commands
# ----------------------------------------------------------------------


def cmd_serve(args) -> int:
    """Run the persistent campaign service until stopped.

    The daemon exits on a client ``shutdown`` request (after draining
    the queue and compacting every store it dirtied) or on Ctrl-C.
    """
    from repro.campaign.service import CampaignService

    service = CampaignService(
        address=args.address,
        queue_limit=args.queue_limit,
        jobs=args.jobs,
        fleet=args.fleet,
    )
    service.start()
    print(f"campaign service listening on {service.address}", flush=True)
    if args.fleet:
        print(f"fleet workers attach at {service.fleet_address}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.stop()
        return 130
    return 0


def cmd_submit(args) -> int:
    """Submit a campaign to a running service; watch it to completion.

    Exit codes mirror ``run`` (:data:`EXIT_EXECUTOR_FAILURE`,
    :data:`EXIT_NOT_CACHED`) plus :data:`EXIT_BUSY` when the daemon
    answers with backpressure.
    """
    from repro.campaign.service import (
        ServiceBusy,
        ServiceRejected,
        submit_spec,
    )

    spec = resolve_spec(args.spec, args)
    on_beat = None
    if not args.quiet and not args.no_watch:
        seen: list[str] = []

        def on_beat(message):
            line = _beat_line(message)
            if not seen or seen[-1] != line:
                seen[:] = [line]
                print(line, flush=True)

    try:
        outcome = submit_spec(
            args.address,
            spec,
            store=args.store,
            jobs=args.jobs,
            watch=not args.no_watch,
            on_beat=on_beat,
        )
    except ServiceBusy as exc:
        print(
            f"service busy: {exc} "
            f"(queue {exc.queue_depth}/{exc.queue_limit})"
        )
        return EXIT_BUSY
    except ServiceRejected as exc:
        print(f"submission rejected: {exc}")
        return 1
    accepted = outcome["accepted"]
    dedup = " [deduplicated]" if accepted.get("deduped") else ""
    print(
        f"run {accepted['run_id']}: {accepted['total']} scenarios "
        f"-> {accepted['store']}{dedup}"
    )
    report = outcome["report"]
    if report is None:
        return 0
    print(
        f"campaign {spec.name!r}: {report['total']} scenarios, "
        f"{report['executed']} executed, {report['cached']} cached, "
        f"{len(report['failures'])} failures, {report['elapsed_s']}s"
    )
    for failure in report["failures"][:5]:
        print(f"  failure {failure['key'][:12]}: {failure['error']}")
    if report["failures"]:
        return EXIT_EXECUTOR_FAILURE
    if args.expect_cached and report["executed"]:
        print(f"--expect-cached: {report['executed']} scenarios executed")
        return EXIT_NOT_CACHED
    return 0


def cmd_worker(args) -> int:
    """Attach one fleet worker to a campaign's socket transport."""
    from repro.campaign.transports import fleet_worker

    executed = fleet_worker(
        args.address,
        max_batches=args.max_batches,
        stop_when_idle=args.stop_when_idle,
    )
    print(f"fleet worker executed {executed} scenarios")
    return 0


def cmd_report(args) -> int:
    spec = resolve_spec(args.spec, args)
    store = resolve_store(spec, args)
    cases = spec.cases()
    missing = store.missing(cases)
    if missing:
        print(
            f"{len(missing)} of {len(cases)} scenarios missing from "
            f"{store.root}; run:  python -m repro.campaign run --spec {args.spec}"
        )
        return 1
    if args.format != "text":
        headers, rows = _report_table(spec.kind, cases, store)
        render = {
            "csv": _format_csv,
            "markdown": _format_markdown,
            "json": _format_json,
        }[args.format]
        text = render(headers, rows)
        print(text)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"report -> {args.out}")
        return 0
    if spec.kind == "simulate":
        from repro.analysis.report import render_figures_from_store

        text = render_figures_from_store(store, only=_series_subset(spec.name))
        if text is None:
            text = _generic_simulate_report(cases, store)
    elif spec.kind == "explore":
        if spec.name == "faults":
            text = _resilience_report(cases, store)
        elif spec.name == "lineage":
            text = _lineage_report(cases, store)
        else:
            text = _explore_report(cases, store)
    elif spec.kind == "fork_family":
        text = _fork_family_report(cases, store)
    else:
        text = _differential_report(cases, store)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"report -> {args.out}")
    return 0


def _series_subset(name: str):
    known = {s["figure"] for s in presets.figure_series()}
    if name == "figures":
        return None  # every section
    return (name,) if name in known else ()


def _generic_simulate_report(cases, store: CampaignStore) -> str:
    from repro.campaign.executors import result_from_payload

    lines = [
        f"{'workload':<22} {'protocol':<10} {'ic':<6} {'procs':>5} "
        f"{'cyc/txn':>10} {'B/miss':>8}"
    ]
    for case in cases:
        result = result_from_payload(store.get(case.key)["result"])
        lines.append(
            f"{result.workload_name:<22} {result.config.protocol:<10} "
            f"{result.config.interconnect:<6} {result.config.n_procs:>5} "
            f"{result.cycles_per_transaction:>10.1f} "
            f"{result.bytes_per_miss:>8.1f}"
        )
    return "\n".join(lines)


def _explore_report(cases, store: CampaignStore) -> str:
    from repro.testing.explore import Scenario, ScenarioOutcome, summarize

    # Both lists derive from the same deduplicated cases, so duplicate
    # grid entries cannot misalign scenarios and outcomes.
    scenarios = [Scenario.from_dict(case.params) for case in cases]
    outcomes = [ScenarioOutcome(**store.get(case.key)["result"]) for case in cases]
    report = summarize(scenarios, outcomes)
    return json.dumps(report, indent=2, sort_keys=True)


def _fault_classes_of(params: dict) -> str:
    """The fault classes a scenario document schedules, as a label."""
    kinds = sorted(
        {event["kind"] for event in params.get("faults", {}).get("events", ())}
    )
    return "+".join(kinds) if kinds else "none"


def _resilience_report(cases, store: CampaignStore) -> str:
    """Per (fault class, protocol/topology): recovery time and escalations.

    Time-to-recovery is how long past the last fault window the system
    still needed to finish; escalations are the persistent requests the
    safety net fired — the paper's prediction is that token protocols
    lean on exactly that machinery to ride out the fault, so the counts
    should rise with fault pressure while violations stay at zero.

    TTR is aggregated only over scenarios where a fault actually fired
    (some fault-stats counter is nonzero): a scheduled window the
    traffic never crossed recovers from nothing, and folding its 0.0
    into the mean skewed every group's TTR low.  ``fired`` reports the
    per-group sample size so a thin mean is visibly thin.
    """
    groups: dict[tuple[str, str], dict] = {}
    for case in cases:
        result = store.get(case.key)["result"]
        params = case.params
        key = (
            _fault_classes_of(params),
            f"{params.get('protocol')}/{params.get('interconnect')}",
        )
        group = groups.setdefault(
            key,
            {"runs": 0, "violations": 0, "recovery": [],
             "persistent": 0, "reissued": 0},
        )
        group["runs"] += 1
        if not result.get("ok", True):
            group["violations"] += 1
        if any(result.get("fault_stats", {}).values()):
            group["recovery"].append(result.get("recovery_ns", 0.0))
        group["persistent"] += result.get("persistent_requests", 0)
        group["reissued"] += result.get("reissued_requests", 0)
    lines = [
        f"{'fault class':<14} {'protocol':<17} {'runs':>4} {'viol':>4} "
        f"{'fired':>5} {'ttr mean':>9} {'ttr max':>9} {'persist':>7} "
        f"{'reissue':>7}"
    ]
    total_runs = total_violations = 0
    for key in sorted(groups):
        group = groups[key]
        recovery = group["recovery"]
        total_runs += group["runs"]
        total_violations += group["violations"]
        if recovery:
            ttr_mean = f"{sum(recovery) / len(recovery):>9.1f}"
            ttr_max = f"{max(recovery):>9.1f}"
        else:
            ttr_mean = f"{'-':>9}"
            ttr_max = f"{'-':>9}"
        lines.append(
            f"{key[0]:<14} {key[1]:<17} {group['runs']:>4} "
            f"{group['violations']:>4} {len(recovery):>5} "
            f"{ttr_mean} {ttr_max} "
            f"{group['persistent']:>7} {group['reissued']:>7}"
        )
    lines.append(
        f"{total_runs} runs, {total_violations} violations "
        "(ttr in ns after the last fault window, aggregated over the "
        "'fired' scenarios only; persist/reissue are summed escalation "
        "counts)"
    )
    return "\n".join(lines)


def _lineage_report(cases, store: CampaignStore) -> str:
    """Per protocol/topology: custody volume and terminal outcomes.

    Every scenario in the lineage campaign runs with the token outcome
    contract armed, so ``viol`` staying at zero means every custody
    chain in the whole campaign reached exactly one terminal state —
    including the corruption-dropped request chains, which must show up
    under ``absorbed`` rather than dangling.
    """
    groups: dict[str, dict] = {}
    for case in cases:
        result = store.get(case.key)["result"]
        params = case.params
        key = f"{params.get('protocol')}/{params.get('interconnect')}"
        group = groups.setdefault(
            key,
            {"runs": 0, "violations": 0, "events": 0, "transfers": 0,
             "blocks": 0, "terminals": 0, "absorbed": 0},
        )
        group["runs"] += 1
        if not result.get("ok", True):
            group["violations"] += 1
        stats = result.get("lineage_stats", {})
        group["events"] += stats.get("lineage_events", 0)
        group["transfers"] += stats.get("lineage_transfers", 0)
        group["blocks"] += stats.get("lineage_blocks", 0)
        group["terminals"] += stats.get("lineage_terminals", 0)
        group["absorbed"] += stats.get("lineage_absorbed_reissues", 0)
    lines = [
        f"{'protocol':<17} {'runs':>4} {'viol':>4} {'events':>9} "
        f"{'xfers':>8} {'blocks':>6} {'terminals':>9} {'absorbed':>8}"
    ]
    total_runs = total_violations = 0
    for key in sorted(groups):
        group = groups[key]
        total_runs += group["runs"]
        total_violations += group["violations"]
        lines.append(
            f"{key:<17} {group['runs']:>4} {group['violations']:>4} "
            f"{group['events']:>9} {group['transfers']:>8} "
            f"{group['blocks']:>6} {group['terminals']:>9} "
            f"{group['absorbed']:>8}"
        )
    lines.append(
        f"{total_runs} runs, {total_violations} violations (terminals = "
        "quiesce + absorbed-by-reissue custody-chain outcomes; absorbed = "
        "fault-dropped request chains terminated by a completed "
        "transaction)"
    )
    return "\n".join(lines)


def _fork_family_report(cases, store: CampaignStore) -> str:
    """Per family/config: shared warmup cost and per-tail increments."""
    lines = [
        f"{'family':<10} {'protocol':<10} {'ic':<6} {'tail':<10} "
        f"{'warmup ev':>9} {'tail ev':>8} {'runtime_ns':>11}"
    ]
    for case in cases:
        result = store.get(case.key)["result"]
        params = case.params
        config = params.get("config", {})
        warmup_events = result.get("warmup_events", 0)
        for tail, payload in sorted(result.get("tails", {}).items()):
            lines.append(
                f"{result.get('family', ''):<10} "
                f"{config.get('protocol', ''):<10} "
                f"{config.get('interconnect', ''):<6} {tail:<10} "
                f"{warmup_events:>9} "
                f"{payload['events_fired'] - warmup_events:>8} "
                f"{payload['runtime_ns']:>11.1f}"
            )
    lines.append(
        f"{len(cases)} families (tail ev = events beyond the shared "
        "warmup checkpoint)"
    )
    return "\n".join(lines)


def _report_table(kind: str, cases, store: CampaignStore):
    """``(headers, rows)`` of a campaign's results, for csv/markdown."""
    rows = []
    if kind == "simulate":
        from repro.campaign.executors import result_from_payload

        headers = [
            "workload", "protocol", "interconnect", "n_procs",
            "cycles_per_transaction", "bytes_per_miss", "runtime_ns",
            "total_ops", "bandwidth", "variant",
        ]
        for case in cases:
            result = result_from_payload(store.get(case.key)["result"])
            config = result.config
            variant = ""
            if config.protocol == "tokenm":
                variant = config.predictor + (
                    "+hybrid" if config.bandwidth_adaptive else ""
                )
            rows.append([
                result.workload_name,
                config.protocol,
                config.interconnect,
                config.n_procs,
                round(result.cycles_per_transaction, 2),
                round(result.bytes_per_miss, 2),
                round(result.runtime_ns, 1),
                result.total_ops,
                config.link_bandwidth_bytes_per_ns or "unlimited",
                variant,
            ])
    elif kind == "explore":
        headers = [
            "protocol", "interconnect", "workload", "seed", "ok",
            "violation_type", "persistent_requests", "reissued_requests",
            "events_fired", "fault_classes", "fault_fired", "recovery_ns",
        ]
        for case in cases:
            result = store.get(case.key)["result"]
            params = case.params
            # Same fix as the resilience table: a recovery time is only
            # a measurement when a fault actually fired; emitting a
            # default 0.0 for unfired scenarios poisoned downstream
            # aggregation of the CSV.
            fired = bool(any(result.get("fault_stats", {}).values()))
            rows.append([
                params.get("protocol"),
                params.get("interconnect"),
                params.get("workload"),
                params.get("seed"),
                result.get("ok"),
                result.get("violation_type") or "",
                result.get("persistent_requests", 0),
                result.get("reissued_requests", 0),
                result.get("events_fired", 0),
                _fault_classes_of(params),
                fired,
                round(result.get("recovery_ns", 0.0), 1) if fired else "",
            ])
    elif kind == "differential":
        headers = ["workload", "seed", "reference", "agreed", "mismatches"]
        for case in cases:
            result = store.get(case.key)["result"]
            bad = {k: v for k, v in result.get("mismatches", {}).items() if v}
            rows.append([
                result.get("workload"),
                result.get("seed"),
                result.get("reference"),
                result.get("agreed"),
                "; ".join(f"{k}: {', '.join(v)}" for k, v in bad.items()),
            ])
    else:
        raise SystemExit(f"no tabular report for campaign kind {kind!r}")
    return headers, rows


def _format_csv(headers, rows) -> str:
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue().rstrip("\n")


def _format_json(headers, rows) -> str:
    """One object per scenario, keys in header order.

    Key order is the header order (insertion order survives
    ``json.dumps`` without ``sort_keys``), so the emitted bytes are a
    stable function of the table — diffable across runs and safe to
    check into golden files.
    """
    return json.dumps(
        [dict(zip(headers, row)) for row in rows], indent=2
    )


def _format_markdown(headers, rows) -> str:
    def cell(value) -> str:
        return str(value).replace("|", "\\|")

    lines = [
        "| " + " | ".join(cell(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(cell(value) for value in row) + " |" for row in rows
    )
    return "\n".join(lines)


def _differential_report(cases, store: CampaignStore) -> str:
    lines = []
    disagreed = 0
    for case in cases:
        result = store.get(case.key)["result"]
        status = "agreed" if result["agreed"] else "MISMATCH"
        disagreed += 0 if result["agreed"] else 1
        lines.append(
            f"{result['workload']:<20} seed={result['seed']:<4} "
            f"ref={result['reference']:<16} {status}"
        )
    lines.append(
        f"{len(lines)} comparisons, {disagreed} disagreements"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Sharded, resumable, content-addressed scenario sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (("run", cmd_run), ("status", cmd_status),
                     ("report", cmd_report), ("compact", cmd_compact)):
        cmd = sub.add_parser(name)
        cmd.set_defaults(fn=fn)
        cmd.add_argument("--spec", required=True,
                         help="preset name or spec JSON file")
        cmd.add_argument("--store", default=None,
                         help="store directory (default: the spec's)")
        cmd.add_argument("--seeds", type=int, default=8,
                         help="seed count for explorer/differential specs")
        cmd.add_argument("--seed-base", type=int, default=0)
        cmd.add_argument("--smoke", action="store_true",
                         help="reduced-scale explorer/workloads scenarios")
        if name == "run":
            cmd.add_argument("--jobs", type=int, default=None,
                             help="worker processes (default: all cores; "
                                  "1 = serial in-process)")
            cmd.add_argument("--max-tasks-per-child", type=int, default=None,
                             help="recycle workers after N scenarios "
                                  "(bounds per-worker memory)")
            cmd.add_argument("--expect-cached", action="store_true",
                             help="exit nonzero if anything executed")
            cmd.add_argument("-q", "--quiet", action="store_true")
            cmd.add_argument("--heartbeat", default=None,
                             help="live-progress JSON file (default: "
                                  "<store>/heartbeat.json; '-' disables)")
        if name == "status":
            cmd.add_argument("--watch", action="store_true",
                             help="tail the runner's heartbeat file")
            cmd.add_argument("--interval", type=float, default=1.0,
                             help="--watch poll interval in seconds")
        if name == "report":
            cmd.add_argument("--out", default=None,
                             help="also write the report to this file")
            cmd.add_argument("--format", default="text",
                             choices=("text", "csv", "markdown", "json"),
                             help="text renders the figures; csv/markdown/"
                                  "json export one row per scenario")
        if name == "compact":
            cmd.add_argument("--prune-stale", action="store_true",
                             help="also drop records recorded under a "
                                  "different code fingerprint")

    serve = sub.add_parser("serve",
                           help="run the persistent campaign service")
    serve.set_defaults(fn=cmd_serve)
    serve.add_argument("--address", default="127.0.0.1:0",
                       help="host:port (TCP) or a unix socket path; "
                            "port 0 picks an ephemeral port")
    serve.add_argument("--queue-limit", type=int, default=8,
                       help="queued runs beyond which submissions get "
                            "an explicit backpressure response")
    serve.add_argument("--jobs", type=int, default=1,
                       help="default per-run parallelism (submissions "
                            "may override)")
    serve.add_argument("--fleet", default=None,
                       help="also serve pull-based fleet workers at "
                            "this address (runs then execute on the "
                            "fleet instead of a local pool)")

    submit = sub.add_parser("submit",
                            help="submit a campaign to a running service")
    submit.set_defaults(fn=cmd_submit)
    submit.add_argument("--address", required=True,
                        help="the service's listen address")
    submit.add_argument("--spec", required=True,
                        help="preset name or spec JSON file")
    submit.add_argument("--store", default=None,
                        help="store directory (default: the spec's)")
    submit.add_argument("--seeds", type=int, default=8)
    submit.add_argument("--seed-base", type=int, default=0)
    submit.add_argument("--smoke", action="store_true")
    submit.add_argument("--jobs", type=int, default=None,
                        help="override the service's per-run parallelism")
    submit.add_argument("--no-watch", action="store_true",
                        help="return after acknowledgement instead of "
                             "streaming progress to completion")
    submit.add_argument("--expect-cached", action="store_true",
                        help="exit nonzero if anything executed")
    submit.add_argument("-q", "--quiet", action="store_true")

    worker = sub.add_parser("worker",
                            help="attach a fleet worker to a campaign")
    worker.set_defaults(fn=cmd_worker)
    worker.add_argument("--address", required=True,
                        help="the fleet transport's listen address")
    worker.add_argument("--max-batches", type=int, default=None,
                        help="exit after pulling N batches")
    worker.add_argument("--stop-when-idle", action="store_true",
                        help="exit when the campaign has no queued work")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `report | head`) closed early; suppress
        # the interpreter's noisy shutdown message but exit with the
        # conventional SIGPIPE status (128+13) — never a misleading 0,
        # since run's exit code is a CI contract.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
