"""The campaign scheduler: store diffing, retries, heartbeats — no I/O
strategy of its own.

:class:`CampaignScheduler` is the transport-agnostic half of what used
to be one monolithic ``run_campaign``: it consumes a
:class:`~repro.campaign.spec.CampaignSpec` (or explicit case list),
diffs it against the store, submits the missing cases to whatever
:mod:`~repro.campaign.transports` transport it is handed, and turns the
stream of completions into progress callbacks, heartbeat beats, and a
:class:`RunReport`.  Contract (unchanged from the monolith — the
equivalence tests pin it):

* **Incremental**: only cases missing from the store execute; a
  completed campaign re-runs as a 100% store hit.
* **Deterministic outputs under arbitrary scheduling**: missing cases
  are submitted in spec order; *which* lane executes a scenario depends
  on completion timing — but every result is content-addressed and
  compaction canonicalizes the store, so the record set and the final
  shard bytes are a pure function of (spec, code version), independent
  of transport, lanes, or scheduling.
* **Broken-transport retry**: a transport losing workers mid-batch
  (:class:`~repro.campaign.transports.TransportBroken`) is survivable —
  the store is reloaded (picking up every record flushed before the
  crash), the genuinely unfinished cases are resubmitted, and after
  :data:`_TRANSPORT_RETRIES` restarts the stragglers surface as
  ordinary per-case failures.
* **Durability before acknowledgement**: transports publish each record
  to the store before yielding its completion, so a beat (and a
  subscriber update downstream) never claims work a crash could lose.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.campaign.spec import CampaignSpec, ScenarioCase
from repro.campaign.store import CampaignStore, StoreBusyError
from repro.campaign.transports import TransportBroken

#: progress(done, total, case, ok, error) — called after each *executed*
#: case in completion order; ``done`` starts at the cached count.
ProgressFn = Callable[[int, int, ScenarioCase, bool, "str | None"], None]

#: Transport restarts after a mid-batch break (worker crash) before the
#: still-unfinished cases are surfaced as failures.
_TRANSPORT_RETRIES = 2


@dataclasses.dataclass
class RunReport:
    """What one scheduler run (or ``run_campaign`` call) did."""

    total: int
    executed: int
    cached: int
    failures: list[dict] = dataclasses.field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


class HeartbeatWriter:
    """Atomic progress beacon for ``campaign status --watch``.

    One JSON object per beat, written tmp-then-:func:`os.replace` so a
    concurrent reader never sees a torn file.  Beats happen on every
    completion plus once at start and once at the end (``finished``
    flips true), so a watcher polling the file sees monotone progress
    and a definitive terminal state even for a 100%-cached run.

    ``path`` may be ``None`` for a file-less beacon; each beat payload
    is also handed to ``sink`` when given — the campaign service streams
    exactly these payloads to its subscribers, so a socket watcher and
    a file watcher read the same format.
    """

    def __init__(self, path, total: int, cached: int, jobs: int,
                 sink: Callable[[dict], None] | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.total = total
        self.cached = cached
        self.jobs = jobs
        self.failures = 0
        self.sink = sink
        self._streams: dict[str, int] = {}
        self._started = time.time()
        self._t0 = time.perf_counter()

    def beat(self, done: int, stream: str | None = None,
             ok: bool = True, finished: bool = False) -> None:
        if stream is not None:
            self._streams[stream] = self._streams.get(stream, 0) + 1
        if not ok:
            self.failures += 1
        elapsed = time.perf_counter() - self._t0
        executed = sum(self._streams.values())
        rate = executed / elapsed if elapsed > 0 else 0.0
        remaining = self.total - done
        payload = {
            "total": self.total,
            "completed": done,
            "cached": self.cached,
            "executed": executed,
            "failures": self.failures,
            "jobs": self.jobs,
            "started_at": self._started,
            "updated_at": time.time(),
            "elapsed_s": round(elapsed, 3),
            "throughput_per_s": round(rate, 4),
            "eta_s": round(remaining / rate, 1) if rate > 0 else None,
            "shards": {
                name: {
                    "completed": count,
                    "per_s": round(count / elapsed, 4) if elapsed > 0 else 0.0,
                }
                for name, count in sorted(self._streams.items())
            },
            "finished": finished,
        }
        if self.path is not None:
            tmp = self.path.with_suffix(".tmp")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self.path)
        if self.sink is not None:
            self.sink(payload)


def _available_cpus() -> int:
    """CPUs this process may actually use, not the machine's total.

    ``sched_getaffinity`` respects container/cgroup cpusets and
    ``taskset`` restrictions; ``cpu_count`` would oversubscribe the pool
    on affinity-restricted hosts.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # platforms without the syscall
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | None, n_cases: int) -> int:
    """Auto (``None``) = one worker per usable core, capped by case count."""
    if jobs is None:
        jobs = _available_cpus()
    return max(1, min(jobs, max(n_cases, 1)))


class CampaignScheduler:
    """Drive a campaign to completion over any transport.

    One scheduler may run many campaigns against its store (the service
    daemon does); each :meth:`run` is independent.  ``heartbeat`` names
    the beacon file (``None`` disables it); ``heartbeat_sink``
    additionally receives every beat payload in-process.
    """

    def __init__(
        self,
        store: CampaignStore,
        progress: ProgressFn | None = None,
        compact: bool = True,
        heartbeat: "str | os.PathLike | None" = None,
        heartbeat_sink: Callable[[dict], None] | None = None,
        retries: int | None = None,
    ):
        self.store = store
        self.progress = progress
        self.compact = compact
        self.heartbeat = heartbeat
        self.heartbeat_sink = heartbeat_sink
        self.retries = _TRANSPORT_RETRIES if retries is None else retries

    # ------------------------------------------------------------------

    @staticmethod
    def cases_of(
        spec_or_cases: CampaignSpec | Sequence[ScenarioCase],
    ) -> list[ScenarioCase]:
        if isinstance(spec_or_cases, CampaignSpec):
            return spec_or_cases.cases()
        return list(spec_or_cases)

    def pending(
        self, spec_or_cases: CampaignSpec | Sequence[ScenarioCase]
    ) -> list[ScenarioCase]:
        """Diff a spec against the store: the cases that would execute."""
        return self.store.missing(self.cases_of(spec_or_cases))

    # ------------------------------------------------------------------

    def run(
        self,
        spec_or_cases: CampaignSpec | Sequence[ScenarioCase],
        transport,
    ) -> RunReport:
        """Execute every case not yet in the store; return what happened.

        Failures (executor exceptions, as opposed to oracle violations,
        which are ordinary *results* for the ``explore`` kind) are
        listed in the report and their cases left unrecorded, so a rerun
        retries them.
        """
        cases = self.cases_of(spec_or_cases)
        started = time.perf_counter()
        missing = self.store.missing(cases)
        total = len(cases)
        done = total - len(missing)
        failures: list[dict] = []
        beacon = None
        if self.heartbeat is not None or self.heartbeat_sink is not None:
            beacon = HeartbeatWriter(
                self.heartbeat, total, done,
                getattr(transport, "lanes", 1), sink=self.heartbeat_sink,
            )
            beacon.beat(done)

        remaining = list(missing)
        broken_reason = "TransportBroken"
        for _attempt in range(self.retries + 1):
            if not remaining:
                break
            try:
                for completion in transport.submit(remaining):
                    if not completion.ok:
                        failures.append(
                            {"key": completion.case.key,
                             "error": completion.error}
                        )
                    done += 1
                    if beacon is not None:
                        beacon.beat(done, stream=completion.stream,
                                    ok=completion.ok)
                    if self.progress is not None:
                        self.progress(done, total, completion.case,
                                      completion.ok, completion.error)
                remaining = []
            except TransportBroken as exc:
                # Mark this round's in-flight cases unfinished: reload
                # the store (picking up every record flushed before the
                # crash) and keep whatever is still missing, minus the
                # cases that already failed in an orderly way.
                broken_reason = exc.reason
                self.store.close()
                self.store.load()
                failed_keys = {failure["key"] for failure in failures}
                remaining = [
                    case
                    for case in self.store.missing(remaining)
                    if case.key not in failed_keys
                ]
                done = total - len(remaining)
        if remaining:
            failures.extend(
                {
                    "key": case.key,
                    "error": (
                        f"{broken_reason} and the transport was restarted "
                        f"{self.retries} times without finishing this case"
                    ),
                }
                for case in remaining
            )

        if beacon is not None:
            beacon.beat(done, finished=True)
        self.store.close()
        if self.compact and self.store.dirty:
            try:
                # compact() re-reads everything on disk, which also folds
                # the transport's pending shards into the parent's index.
                self.store.compact()
            except StoreBusyError:
                # Another writer (a concurrent CLI run, a daemon) holds
                # the store's writer lock: leave its pending files alone
                # and just fold the records into this process's index.
                self.store.load()
        elif missing and getattr(transport, "out_of_process", False):
            # No compaction: an explicit reload picks up worker records.
            self.store.load()
        return RunReport(
            total=total,
            executed=len(missing) - len(failures),
            cached=total - len(missing),
            failures=failures,
            elapsed_s=round(time.perf_counter() - started, 3),
        )
