"""Campaign specifications and content-addressed scenario identity.

A *campaign* is a declared set of scenarios — protocol-grid points ×
workloads × seeds × config overrides — executed by one of the registered
executors (:mod:`repro.campaign.executors`).  Two identities anchor the
whole subsystem:

:class:`ScenarioCase`
    One fully-determined unit of work: an executor ``kind`` plus a
    JSON-canonical ``params`` document.  Its ``key`` is a SHA-256 over
    the canonical JSON of ``(kind, params, fingerprint)`` — the same
    scenario always hashes to the same key, any parameter change (or a
    change to the simulator's source) produces a new one.  The key is
    what the on-disk store addresses results by, which is what makes
    half-finished campaigns resumable: rerunning executes exactly the
    keys the store does not hold.

:func:`code_fingerprint`
    A digest over every ``repro`` source file.  Simulations are
    bit-deterministic for a *fixed* simulator, so cached results are
    sound only until the code changes; folding the fingerprint into
    every scenario key invalidates the entire store the moment any
    source file differs.  ``REPRO_CAMPAIGN_FINGERPRINT`` overrides it
    (tests use this; CI pins it to the commit's tree hash implicitly by
    keying the store cache on ``hashFiles('src/**')``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from pathlib import Path

#: Cache for the computed source digest (the env override is consulted
#: on every call so tests can swap fingerprints without reimporting).
_source_digest: str | None = None


def canonical_json(payload) -> str:
    """The canonical encoding every hash and store record uses."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonicalize(params: dict) -> dict:
    """Round-trip ``params`` through canonical JSON.

    Normalizes tuples to lists and dict ordering, and rejects anything
    not JSON-representable — a scenario that cannot be serialized cannot
    be content-addressed or resumed.
    """
    return json.loads(canonical_json(params))


def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (or the env override)."""
    override = os.environ.get("REPRO_CAMPAIGN_FINGERPRINT")
    if override:
        return override
    global _source_digest
    if _source_digest is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_digest = digest.hexdigest()[:16]
    return _source_digest


class ScenarioCase:
    """One content-addressed unit of campaign work."""

    __slots__ = ("kind", "params", "fingerprint", "key")

    def __init__(self, kind: str, params: dict, fingerprint: str | None = None):
        self.kind = kind
        self.params = canonicalize(params)
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        self.key = hashlib.sha256(
            canonical_json(
                {
                    "fingerprint": self.fingerprint,
                    "kind": self.kind,
                    "params": self.params,
                }
            ).encode()
        ).hexdigest()

    def __repr__(self) -> str:
        return f"ScenarioCase({self.kind!r}, key={self.key[:12]})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ScenarioCase) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)


@dataclasses.dataclass
class CampaignSpec:
    """A declarative sweep: base params × axes, plus explicit cases.

    ``axes`` is an ordered list of ``(name, values)`` pairs expanded as a
    cross product in declaration order.  A dict-valued axis entry is
    merged into the scenario params (the idiom for coupled fields such
    as the legal ``(protocol, interconnect)`` pairs of the canonical
    grid); a scalar entry is assigned to the axis name.  ``grid`` lists
    fully-formed param documents for irregular sweeps (the figure
    benches, whose variants do not factor into a clean product).
    """

    name: str
    kind: str
    base: dict = dataclasses.field(default_factory=dict)
    axes: list[tuple[str, list]] = dataclasses.field(default_factory=list)
    grid: list[dict] = dataclasses.field(default_factory=list)
    #: Where the CLI keeps this campaign's store unless told otherwise.
    default_store: str | None = None

    def case_params(self) -> list[dict]:
        """Every scenario's params, in deterministic declaration order."""
        documents: list[dict] = []
        if self.axes:
            names = [name for name, _ in self.axes]
            for combo in itertools.product(*(values for _, values in self.axes)):
                params = dict(self.base)
                for name, value in zip(names, combo):
                    if isinstance(value, dict):
                        params.update(value)
                    else:
                        params[name] = value
                documents.append(params)
        elif self.base and not self.grid:
            documents.append(dict(self.base))
        for params in self.grid:
            merged = dict(self.base)
            merged.update(params)
            documents.append(merged)
        return documents

    def cases(self, fingerprint: str | None = None) -> list[ScenarioCase]:
        """Deduplicated :class:`ScenarioCase` list (first occurrence wins)."""
        seen: dict[str, ScenarioCase] = {}
        for params in self.case_params():
            case = ScenarioCase(self.kind, params, fingerprint=fingerprint)
            seen.setdefault(case.key, case)
        return list(seen.values())

    def __len__(self) -> int:
        return len(self.cases())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "base": self.base,
            "axes": [[name, values] for name, values in self.axes],
            "grid": self.grid,
            "default_store": self.default_store,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            base=dict(payload.get("base", {})),
            axes=[(name, list(values)) for name, values in payload.get("axes", [])],
            grid=[dict(params) for params in payload.get("grid", [])],
            default_store=payload.get("default_store"),
        )


def union_cases(
    specs, fingerprint: str | None = None
) -> list[ScenarioCase]:
    """Cases of several specs, deduplicated by key, spec order preserved."""
    seen: dict[str, ScenarioCase] = {}
    for spec in specs:
        for case in spec.cases(fingerprint=fingerprint):
            seen.setdefault(case.key, case)
    return list(seen.values())
