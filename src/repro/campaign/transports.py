"""Transports: *where* campaign cases execute.

The :class:`~repro.campaign.scheduler.CampaignScheduler` decides *what*
runs (store diffing, retry budgets, heartbeats); a transport decides
*where*, behind one tiny contract:

``submit(batch) -> iterator of CaseCompletion``
    Execute every case in ``batch``, yielding one completion per case in
    completion order.  The transport is responsible for publishing each
    successful result to the store durably *before* yielding its
    completion — that ordering is what makes a crash resumable (a
    yielded case is on disk; an unyielded one reads as missing).
``shutdown()``
    Release workers/sockets.  A transport must survive ``submit`` being
    called again after a :class:`TransportBroken` — that is how the
    scheduler retries.

Three implementations share that contract:

:class:`SerialTransport`
    In-process, batch order — the debugging path and the one that keeps
    the explorer's on-violation shrink/repro flow deterministic.
:class:`ProcessPoolTransport`
    The local ``ProcessPoolExecutor`` fan-out, absorbing the worker
    bootstrap (store binding + fork-context prewarm) that used to live
    inline in ``run_campaign``.  A worker dying mid-case raises
    :class:`TransportBroken`; the pool is rebuilt on the next submit.
:class:`SocketFleetTransport`
    Remote workers connect over TCP or a Unix socket, authenticate
    against the source fingerprint, and *pull* batches; results travel
    back over the wire and are appended to the store parent-side.  A
    worker disconnecting mid-batch has its leased cases requeued, so a
    flaky fleet degrades to slower, never to lost work.

Because every transport publishes identical records through the same
content-addressed store, the final (compacted) store bytes are a pure
function of (spec, code version) — independent of which transport ran
which case.  ``tests/campaign/test_scheduler.py`` pins that equivalence.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Iterator, Sequence

from repro.campaign import wire
from repro.campaign.executors import execute_case
from repro.campaign.spec import ScenarioCase, code_fingerprint
from repro.campaign.store import CampaignStore, make_record


class TransportBroken(RuntimeError):
    """The transport lost execution capacity mid-batch.

    Everything completed so far is durable in the store; the scheduler
    reloads, diffs, and resubmits only what is still missing.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class CaseCompletion:
    """One case's outcome, yielded by ``Transport.submit``."""

    case: ScenarioCase
    ok: bool
    error: str | None
    stream: str


# ----------------------------------------------------------------------
# Serial
# ----------------------------------------------------------------------


class SerialTransport:
    """Execute in-process, in batch (= spec) order."""

    #: Results are written by this process: no reload needed afterwards.
    out_of_process = False
    lanes = 1

    def __init__(self, store: CampaignStore, stream: str = "serial"):
        self.store = store
        self.stream = stream

    def submit(
        self, batch: Sequence[ScenarioCase]
    ) -> Iterator[CaseCompletion]:
        for case in batch:
            try:
                result = execute_case(case)
            except Exception as exc:  # noqa: BLE001 — reported, not swallowed
                yield CaseCompletion(
                    case, False, f"{type(exc).__name__}: {exc}", self.stream
                )
                continue
            self.store.append(make_record(case, result), stream=self.stream)
            yield CaseCompletion(case, True, None, self.stream)

    def shutdown(self) -> None:  # nothing held
        pass


# ----------------------------------------------------------------------
# Local process pool
# ----------------------------------------------------------------------

_worker_store: CampaignStore | None = None
_worker_stream: str = "serial"


def _worker_init(root: str, n_shards: int) -> None:
    """Bootstrap one pool worker: bind its private store stream.

    Runs once per worker process.  The executor registry (and thus the
    simulator) is imported lazily on first case, which under the default
    fork context is already resident from the parent — the prewarm
    effect the old benchmark pool got by importing ``benchmarks.common``
    in every worker.
    """
    global _worker_store, _worker_stream
    _worker_store = CampaignStore(root, n_shards=n_shards)
    _worker_stream = f"worker-{os.getpid()}"


def _worker_run(
    payload: tuple[str, dict, str],
) -> tuple[str, bool, str | None, str]:
    """Execute one case in a pool worker and publish its record."""
    kind, params, fingerprint = payload
    case = ScenarioCase(kind, params, fingerprint=fingerprint)
    try:
        result = execute_case(case)
    except Exception as exc:  # noqa: BLE001 — reported, not swallowed
        return case.key, False, f"{type(exc).__name__}: {exc}", _worker_stream
    _worker_store.append(make_record(case, result), stream=_worker_stream)
    return case.key, True, None, _worker_stream


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn-context children via PYTHONPATH."""
    import repro

    src = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src + (os.pathsep + existing if existing else "")
        )


class ProcessPoolTransport:
    """Fan cases out over a local ``ProcessPoolExecutor``.

    Workers append results straight to their own store stream and hand
    back only ``(key, ok, error, stream)`` triples, so execution never
    accumulates payloads in worker RAM; ``max_tasks_per_child`` (spawn
    context) additionally recycles worker processes for leak isolation.
    The pool lives for one ``submit`` call: workers hold the store's
    shared writer lock while alive, so tearing the pool down before
    returning is what lets the scheduler's end-of-run compaction take
    the exclusive lock (and unlink the workers' pending files).  A
    fresh pool is built lazily on the next submit — fork-context
    children inherit the parent's imports either way, so the prewarm
    effect is per-run, not per-pool-lifetime.
    """

    out_of_process = True

    def __init__(
        self,
        store: CampaignStore,
        jobs: int,
        max_tasks_per_child: int | None = None,
    ):
        self.store = store
        self.lanes = max(1, jobs)
        self.max_tasks_per_child = max_tasks_per_child
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Spawn-default platforms (macOS/Windows) rebuild sys.path
            # from the environment, so make ``repro`` importable
            # unconditionally — harmless under fork, required elsewhere.
            _ensure_child_import_path()
            pool_kwargs: dict = dict(
                max_workers=self.lanes,
                initializer=_worker_init,
                initargs=(str(self.store.root), self.store.n_shards),
            )
            if self.max_tasks_per_child is not None:
                # Worker recycling needs a fresh interpreter per batch;
                # the fork context does not support it.
                import multiprocessing

                pool_kwargs["mp_context"] = multiprocessing.get_context("spawn")
                pool_kwargs["max_tasks_per_child"] = self.max_tasks_per_child
            self._pool = ProcessPoolExecutor(**pool_kwargs)
        return self._pool

    def submit(
        self, batch: Sequence[ScenarioCase]
    ) -> Iterator[CaseCompletion]:
        # A worker dying mid-case (OOM kill, segfault, os._exit) breaks
        # the whole pool: every in-flight future raises
        # BrokenProcessPool.  Workers flush each record as a line in
        # their pending shard, so the scheduler's reload recovers
        # everything completed before the crash.
        pool = self._ensure_pool()
        try:
            by_future = {}
            # Submission in spec order; workers pull from the shared
            # queue, and content-addressing + compaction make the final
            # store independent of which worker ran what.
            for case in batch:
                future = pool.submit(
                    _worker_run, (case.kind, case.params, case.fingerprint)
                )
                by_future[future] = case
            for future in as_completed(by_future):
                case = by_future[future]
                _key, ok, error, stream = future.result()
                yield CaseCompletion(case, ok, error, stream)
            self.shutdown()
        except BrokenProcessPool:
            self.shutdown()
            raise TransportBroken(
                "BrokenProcessPool: a worker died abruptly"
            ) from None

    def shutdown(self) -> None:
        if self._pool is not None:
            # wait=True even on a broken pool: surviving workers get to
            # finish (and durably flush) their in-flight case before the
            # scheduler reloads the store to compute what is missing.
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Socket fleet
# ----------------------------------------------------------------------


class SocketFleetTransport:
    """Serve batches to remote workers over TCP or a Unix socket.

    Workers (:func:`fleet_worker`, ``python -m repro.campaign worker``)
    connect, present their source fingerprint, and pull batches of
    ``batch_size`` cases; mismatched fingerprints are rejected at hello
    (a fleet worker built from different sources would poison the
    content-addressed store with records other checkouts can't verify).
    Results come back over the wire and are appended parent-side under a
    per-worker store stream, so the durability story is exactly the
    local pool's: one pending file per worker, flushed per record.

    A worker disconnecting mid-batch has its leased cases requeued for
    the next puller.  If *no* worker makes progress for
    ``worker_timeout`` seconds the batch raises :class:`TransportBroken`
    so the scheduler can retry (and eventually surface the stall as
    per-case failures) instead of hanging forever.
    """

    out_of_process = True

    def __init__(
        self,
        store: CampaignStore,
        address: str = "127.0.0.1:0",
        batch_size: int = 4,
        fingerprint: str | None = None,
        worker_timeout: float | None = None,
    ):
        self.store = store
        self.batch_size = max(1, batch_size)
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        self.worker_timeout = worker_timeout
        self.lanes = 1  # grows as workers attach
        self._server = wire.listen(address)
        self.address = wire.bound_address(self._server)
        self._lock = threading.Lock()
        self._work: collections.deque[ScenarioCase] = collections.deque()
        self._by_key: dict[str, ScenarioCase] = {}
        self._completions: queue.Queue[CaseCompletion] = queue.Queue()
        self._closing = False
        self._workers_seen = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._accept_thread.start()

    # -- parent side ---------------------------------------------------

    def submit(
        self, batch: Sequence[ScenarioCase]
    ) -> Iterator[CaseCompletion]:
        # Drain completions stranded by a previous timed-out batch (a
        # worker may have published one in the instant the timeout
        # fired); they were already counted as unfinished and must not
        # be credited to this batch.
        while True:
            try:
                self._completions.get_nowait()
            except queue.Empty:
                break
        with self._lock:
            for case in batch:
                self._by_key[case.key] = case
            self._work.extend(batch)
        pending = len(batch)
        while pending:
            try:
                completion = self._completions.get(timeout=self.worker_timeout)
            except queue.Empty:
                with self._lock:
                    self._work.clear()
                    self._by_key.clear()
                raise TransportBroken(
                    "SocketFleetTransport: no worker progress within "
                    f"{self.worker_timeout}s ({self._workers_seen} workers "
                    "ever connected)"
                ) from None
            pending -= 1
            yield completion

    def shutdown(self) -> None:
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass

    # -- per-connection service ----------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            ).start()

    def _serve_worker(self, conn) -> None:
        stream = wire.MessageStream(conn)
        lease: list[ScenarioCase] = []
        try:
            hello = stream.read()
            if not hello or hello.get("type") != "hello":
                stream.send({"type": "reject", "reason": "expected hello"})
                return
            if hello.get("fingerprint") != self.fingerprint:
                stream.send(
                    {
                        "type": "reject",
                        "reason": "source fingerprint mismatch: worker "
                        f"{hello.get('fingerprint')!r} != campaign "
                        f"{self.fingerprint!r}",
                    }
                )
                return
            with self._lock:
                self._workers_seen += 1
                worker_id = self._workers_seen
                self.lanes = max(self.lanes, self._workers_seen)
            store_stream = f"fleet-{worker_id}-{hello.get('worker', 'anon')}"
            stream.send({"type": "welcome", "batch_size": self.batch_size})
            for message in stream:
                if message.get("type") == "pull":
                    with self._lock:
                        lease = [
                            self._work.popleft()
                            for _ in range(
                                min(self.batch_size, len(self._work))
                            )
                        ]
                    if self._closing:
                        stream.send({"type": "bye"})
                        return
                    if not lease:
                        stream.send({"type": "idle"})
                        continue
                    stream.send(
                        {
                            "type": "batch",
                            "cases": [
                                {
                                    "kind": case.kind,
                                    "params": case.params,
                                    "fingerprint": case.fingerprint,
                                }
                                for case in lease
                            ],
                        }
                    )
                elif message.get("type") == "results":
                    for row in message.get("results", ()):
                        with self._lock:
                            case = self._by_key.pop(row.get("key"), None)
                        if case is None:
                            continue  # duplicate/unknown: already settled
                        lease = [c for c in lease if c.key != case.key]
                        if row.get("ok"):
                            # Publish before yielding the completion —
                            # the scheduler's durability contract.
                            with self._lock:
                                self.store.append(
                                    make_record(case, row.get("result")),
                                    stream=store_stream,
                                )
                        self._completions.put(
                            CaseCompletion(
                                case,
                                bool(row.get("ok")),
                                row.get("error"),
                                store_stream,
                            )
                        )
        finally:
            if lease:
                # The worker died holding cases: put them back for the
                # next puller so a flaky fleet loses time, not work.
                with self._lock:
                    requeue = [c for c in lease if c.key in self._by_key]
                    self._work.extendleft(reversed(requeue))
            stream.close()


def fleet_worker(
    address: str,
    max_batches: int | None = None,
    idle_poll_s: float = 0.05,
    stop_when_idle: bool = False,
) -> int:
    """Pull-and-execute loop for one fleet worker; returns cases run.

    Connects to a :class:`SocketFleetTransport`, authenticates with this
    checkout's source fingerprint, then pulls batches until the server
    says ``bye`` (or ``idle`` arrives with ``stop_when_idle``).  Used
    in-process by tests and as the body of
    ``python -m repro.campaign worker``.
    """
    sock = wire.connect(address)
    stream = wire.MessageStream(sock)
    executed = 0
    batches = 0
    try:
        stream.send(
            {
                "type": "hello",
                "fingerprint": code_fingerprint(),
                "worker": f"{os.getpid()}",
            }
        )
        welcome = stream.read()
        if not welcome or welcome.get("type") != "welcome":
            reason = (welcome or {}).get("reason", "connection closed")
            raise ConnectionError(f"fleet worker rejected: {reason}")
        while max_batches is None or batches < max_batches:
            stream.send({"type": "pull"})
            message = stream.read()
            if message is None or message.get("type") == "bye":
                break
            if message.get("type") == "idle":
                if stop_when_idle:
                    break
                time.sleep(idle_poll_s)
                continue
            batches += 1
            results = []
            for doc in message.get("cases", ()):
                case = ScenarioCase(
                    doc["kind"], doc["params"], fingerprint=doc["fingerprint"]
                )
                try:
                    result = execute_case(case)
                except Exception as exc:  # noqa: BLE001
                    results.append(
                        {
                            "key": case.key,
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                else:
                    executed += 1
                    results.append(
                        {"key": case.key, "ok": True, "result": result}
                    )
            stream.send({"type": "results", "results": results})
    finally:
        stream.close()
    return executed
