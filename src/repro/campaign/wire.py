"""Line-delimited JSON over sockets — the campaign fleet/service wire.

One message per line, UTF-8 JSON, ``\\n``-terminated.  Both the socket
fleet transport (:mod:`repro.campaign.transports`) and the campaign
service (:mod:`repro.campaign.service`) speak this framing; the helpers
here are the single home for address parsing, listening-socket setup
(TCP *or* Unix-domain), and the read/write loop, so a message is framed
identically no matter which endpoint sent it.

Addresses are strings: ``"host:port"`` binds/connects TCP, anything
else is treated as a Unix-socket path (created on bind, unlinked on
close).  ``"host:0"`` binds an ephemeral port; :func:`bound_address`
reports what the kernel picked so tests and CI never race on a fixed
port.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Iterator

#: Accept/connect backlog; far above any realistic fleet size.
_BACKLOG = 64


def is_inet(address: str) -> bool:
    """``host:port`` (TCP) vs a filesystem path (Unix socket)."""
    host, sep, port = address.rpartition(":")
    return bool(sep) and bool(host) and port.isdigit()


def listen(address: str) -> socket.socket:
    """A listening socket for ``address`` (TCP or Unix-domain)."""
    if is_inet(address):
        host, _, port = address.rpartition(":")
        server = socket.create_server(
            (host, int(port)), backlog=_BACKLOG, reuse_port=False
        )
        return server
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover — non-POSIX
        raise OSError(f"unix sockets unsupported here; use host:port, got {address!r}")
    try:
        os.unlink(address)
    except OSError:
        pass
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(address)
    server.listen(_BACKLOG)
    return server


def bound_address(server: socket.socket) -> str:
    """The canonical string address a :func:`listen` socket ended up on."""
    name = server.getsockname()
    if isinstance(name, tuple):
        return f"{name[0]}:{name[1]}"
    return name


def connect(address: str, timeout: float | None = None) -> socket.socket:
    """A connected client socket for ``address``."""
    if is_inet(address):
        host, _, port = address.rpartition(":")
        return socket.create_connection((host, int(port)), timeout=timeout)
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        client.settimeout(timeout)
    client.connect(address)
    return client


class MessageStream:
    """One peer's framed view of a connected socket.

    Keeps the receive buffer across reads, so back-to-back messages from
    the peer are never lost between calls.  A partial trailing line (a
    peer killed mid-write) is dropped, mirroring the store's torn-line
    tolerance: the reader sees only complete messages, never a fragment.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""

    def send(self, message: dict) -> None:
        """Write one message as a single JSON line."""
        self.sock.sendall(json.dumps(message, sort_keys=True).encode() + b"\n")

    def read(self) -> dict | None:
        """The next complete message, or ``None`` on EOF/disconnect."""
        while True:
            if b"\n" in self._buffer:
                line, self._buffer = self._buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                if isinstance(message, dict):
                    return message
                continue
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._buffer += chunk

    def __iter__(self) -> Iterator[dict]:
        while True:
            message = self.read()
            if message is None:
                return
            yield message

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
