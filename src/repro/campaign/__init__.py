"""Campaign orchestration: sharded, resumable, content-addressed sweeps.

The single execution path for every scenario sweep in the repo — the
figure-bench prewarm, the adversarial schedule explorer, and the
differential conformance harness all declare
:class:`~repro.campaign.spec.CampaignSpec` objects and run them through
:func:`~repro.campaign.runner.run_campaign` against a
:class:`~repro.campaign.store.CampaignStore`.

* scenarios are content-addressed: key = hash(kind, params, code
  fingerprint), so resuming a killed campaign executes only what is
  missing and a source change invalidates everything;
* results live in JSON-lines shards with per-record flushes and atomic
  compaction, so the store survives kills and its bytes are independent
  of resume history;
* ``python -m repro.campaign run|status|report`` drives it from the
  command line (see :mod:`repro.campaign.cli`).
"""

from repro.campaign.runner import HeartbeatWriter, RunReport, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    ScenarioCase,
    code_fingerprint,
    union_cases,
)
from repro.campaign.store import CampaignStore, make_record

__all__ = [
    "CampaignSpec",
    "CampaignStore",
    "HeartbeatWriter",
    "RunReport",
    "ScenarioCase",
    "code_fingerprint",
    "make_record",
    "run_campaign",
    "union_cases",
]
