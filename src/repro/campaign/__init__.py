"""Campaign orchestration: sharded, resumable, content-addressed sweeps.

The single execution path for every scenario sweep in the repo — the
figure-bench prewarm, the adversarial schedule explorer, and the
differential conformance harness all declare
:class:`~repro.campaign.spec.CampaignSpec` objects and run them through
:func:`~repro.campaign.runner.run_campaign` against a
:class:`~repro.campaign.store.CampaignStore`.

* scenarios are content-addressed: key = hash(kind, params, code
  fingerprint), so resuming a killed campaign executes only what is
  missing and a source change invalidates everything;
* results live in JSON-lines shards with per-record flushes and atomic
  compaction, so the store survives kills and its bytes are independent
  of resume history;
* ``python -m repro.campaign run|status|report`` drives it from the
  command line (see :mod:`repro.campaign.cli`).

Execution is three decoupled layers sharing that one code path:

* **scheduler** (:mod:`repro.campaign.scheduler`) —
  :class:`CampaignScheduler` diffs a spec against the store, drives a
  transport, retries when the transport breaks mid-run, and beats the
  heartbeat; it never knows how scenarios execute;
* **transports** (:mod:`repro.campaign.transports`) — ``submit(batch)``
  yielding completions: in-process serial, local process pool, or a
  socket fleet that ``python -m repro.campaign worker`` processes pull
  batches from.  A store produced through any transport is
  byte-identical, post-compaction, to a serial run;
* **service** (:mod:`repro.campaign.service`) — a persistent daemon
  (``python -m repro.campaign serve``) owning shared stores: spec
  submissions over a line-JSON socket, content-hash dedup of identical
  submissions, a bounded queue with explicit backpressure, heartbeat
  streaming to subscribers, and idle-time store compaction.

:func:`run_campaign` remains the one-call convenience wrapper over the
scheduler with a local transport.
"""

from repro.campaign.runner import HeartbeatWriter, RunReport, run_campaign
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import (
    CampaignSpec,
    ScenarioCase,
    code_fingerprint,
    union_cases,
)
from repro.campaign.store import CampaignStore, StoreBusyError, make_record
from repro.campaign.transports import (
    ProcessPoolTransport,
    SerialTransport,
    SocketFleetTransport,
    TransportBroken,
    fleet_worker,
)

__all__ = [
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStore",
    "HeartbeatWriter",
    "ProcessPoolTransport",
    "RunReport",
    "ScenarioCase",
    "SerialTransport",
    "SocketFleetTransport",
    "StoreBusyError",
    "TransportBroken",
    "code_fingerprint",
    "fleet_worker",
    "make_record",
    "run_campaign",
    "union_cases",
]
