"""Executors: how each campaign ``kind`` turns params into a result.

Every executor is a pure function of its params document — simulations
are seeded and bit-deterministic — returning a JSON-serializable result
payload.  That purity is what makes the content-addressed store sound:
a record is exactly reproducible from its params, so serving it from
disk is indistinguishable from recomputing it.

Registered kinds:

``simulate``
    One full-system simulation (the figure benches' unit of work).
    Params: ``{"workload": asdict(WorkloadSpec), "ops_per_proc": N,
    "config": {SystemConfig kwargs}}``, or ``{"program":
    WorkloadProgram.to_dict(), "config": {...}}`` for a
    phase-structured program (phase lengths live inside the program
    document).  Result: the
    :class:`~repro.system.simulator.SimulationResult` payload.
``explore``
    One adversarial schedule-explorer scenario with every oracle armed.
    Params: :meth:`repro.testing.explore.Scenario.to_dict`.  Result:
    ``asdict(ScenarioOutcome)`` — oracle violations are *data* here, not
    exceptions, so a violating scenario still produces a cacheable
    record.
``differential``
    One cross-protocol conformance comparison.  Params:
    ``run_differential`` keyword arguments.  Result: its report dict.
``fork_family``
    One warmup-once/fork-many scenario family
    (:mod:`repro.snapshot.fork`).  Params: ``{"family":
    ProgramFamily.to_dict(), "config": {SystemConfig kwargs}}``.
    Result: per-tail :class:`SimulationResult` payloads plus the
    deterministic fork stats (warmup event count, tail count) — but
    *not* the checkpoint hit/miss flag or snapshot byte size, which
    depend on store state and pickle details rather than on the params,
    and would break the executor-purity contract.  Set
    ``REPRO_CHECKPOINT_STORE`` to give workers a shared on-disk
    checkpoint store; unset, every family re-runs its own warmup.

Protocol imports happen inside the executors so this module stays cheap
to import from worker bootstrap.
"""

from __future__ import annotations

import dataclasses

from repro.campaign.spec import ScenarioCase


# ----------------------------------------------------------------------
# SimulationResult <-> JSON payload
# ----------------------------------------------------------------------


def result_to_payload(result) -> dict:
    """Flatten a :class:`SimulationResult` into a JSON-safe document."""
    return {
        "config": dataclasses.asdict(result.config),
        "workload_name": result.workload_name,
        "runtime_ns": result.runtime_ns,
        "total_ops": result.total_ops,
        "total_misses": result.total_misses,
        "counters": result.counters,
        "traffic_bytes": result.traffic_bytes,
        "events_fired": result.events_fired,
        "per_proc_finish_ns": result.per_proc_finish_ns,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "mean_miss_latency_ns": result.mean_miss_latency_ns,
        "ops_per_transaction": result.ops_per_transaction,
    }


def result_from_payload(payload: dict):
    """Rebuild a :class:`SimulationResult` from its stored payload."""
    from repro.config import SystemConfig
    from repro.system.simulator import SimulationResult

    fields = dict(payload)
    fields["config"] = SystemConfig(**fields["config"])
    return SimulationResult(**fields)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


def _run_simulate(params: dict) -> dict:
    from repro.config import SystemConfig

    config = SystemConfig(**params["config"])
    if "program" in params:
        from repro.system.builder import simulate_program
        from repro.workloads.programs import WorkloadProgram

        program = WorkloadProgram.from_dict(params["program"])
        result = simulate_program(config, program)
    else:
        from repro.system.builder import simulate
        from repro.workloads.synthetic import WorkloadSpec

        workload = WorkloadSpec(**params["workload"])
        result = simulate(config, workload.scaled(params["ops_per_proc"]))
    return result_to_payload(result)


def _run_explore(params: dict) -> dict:
    from repro.testing.explore import Scenario, run_scenario

    outcome = run_scenario(Scenario.from_dict(params))
    return dataclasses.asdict(outcome)


def _run_differential(params: dict) -> dict:
    from repro.testing.differential import run_differential

    return run_differential(**params)


def _run_fork_family(params: dict) -> dict:
    from repro.config import SystemConfig
    from repro.snapshot.fork import ProgramFamily, fork_family
    from repro.snapshot.store import store_from_env

    config = SystemConfig(**params["config"])
    family = ProgramFamily.from_dict(params["family"])
    results, stats = fork_family(config, family, store=store_from_env())
    return {
        "family": family.name,
        "tails": {
            name: result_to_payload(result)
            for name, result in results.items()
        },
        # Deterministic subset of the fork stats only (see module doc).
        "warmup_events": stats["warmup_events"],
        "warmup_t": stats["warmup_t"],
        "n_tails": stats["tails"],
    }


#: kind -> executor.  Tests may register additional kinds.
EXECUTORS = {
    "simulate": _run_simulate,
    "explore": _run_explore,
    "differential": _run_differential,
    "fork_family": _run_fork_family,
}


def execute_case(case: ScenarioCase):
    """Run one case through its registered executor."""
    try:
        executor = EXECUTORS[case.kind]
    except KeyError:
        raise ValueError(f"unknown campaign kind {case.kind!r}") from None
    return executor(case.params)
