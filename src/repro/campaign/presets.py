"""The repo's declared campaigns.

Every sweep that used to carry its own loop lives here as a
:class:`~repro.campaign.spec.CampaignSpec`:

* the **figure campaigns** — one spec per figure/table benchmark, plus
  :func:`figures_spec`, their deduplicated union (what the bench-suite
  prewarm and the CI store cache cover).  :func:`figure_series` is the
  same data keyed for rendering, consumed by
  :func:`repro.analysis.report.render_figures_from_store`;
* the **explorer campaign** — seeds × canonical protocol/topology grid
  × adversarial workloads (``python -m repro.testing.explore --jobs``);
* the **differential campaign** — cross-protocol conformance points;
* the **smoke campaign** — a minutes-scale grid CI runs twice to prove
  the second pass is a 100% store hit.

The figure case documents reproduce ``benchmarks/common.py``'s historic
parameterization exactly (same workloads, same ``SystemConfig`` fields),
so the migrated benches compute byte-identical results.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.campaign.spec import CampaignSpec, union_cases

#: Stream length per processor for the commercial-workload benches.
OPS_PER_PROC = 400


def _default_store(relative: str) -> str:
    """Anchor a spec's default store to the repo root, not the cwd.

    ``python -m repro.campaign`` must find the same store no matter
    where it is invoked from (``benchmarks/common.py`` anchors its store
    absolutely too).  The repo root is two levels above the ``repro``
    package in this source layout.
    """
    import repro

    root = Path(repro.__file__).resolve().parents[2]
    return str(root / relative)


def simulate_case_params(
    workload,
    protocol: str,
    interconnect: str,
    bandwidth: float | None = 3.2,
    directory_latency: float = 80.0,
    n_procs: int = 16,
    ops_per_proc: int = OPS_PER_PROC,
    **config_overrides,
) -> dict:
    """The ``simulate``-kind params document for one figure data point."""
    config = dict(
        protocol=protocol,
        interconnect=interconnect,
        n_procs=n_procs,
        link_bandwidth_bytes_per_ns=bandwidth,
        directory_latency_ns=directory_latency,
    )
    config.update(config_overrides)
    return {
        "workload": dataclasses.asdict(workload),
        "ops_per_proc": ops_per_proc,
        "config": config,
    }


def _commercial_workloads():
    from repro.workloads import COMMERCIAL_WORKLOADS

    return COMMERCIAL_WORKLOADS


# ----------------------------------------------------------------------
# Figure series: figure -> renderer + {workload: {variant label: params}}
# ----------------------------------------------------------------------


def figure_series() -> list[dict]:
    """Render-ready descriptors for every figure/table the suite draws."""
    specs = _commercial_workloads()
    fig4a = {
        name: {
            "TokenB / tree": simulate_case_params(spec, "tokenb", "tree"),
            "Snooping / tree": simulate_case_params(spec, "snooping", "tree"),
            "TokenB / torus": simulate_case_params(spec, "tokenb", "torus"),
            "TokenB / tree (unlim bw)": simulate_case_params(
                spec, "tokenb", "tree", None
            ),
            "Snooping / tree (unlim bw)": simulate_case_params(
                spec, "snooping", "tree", None
            ),
            "TokenB / torus (unlim bw)": simulate_case_params(
                spec, "tokenb", "torus", None
            ),
        }
        for name, spec in specs.items()
    }
    fig4b = {
        name: {
            "TokenB / tree": simulate_case_params(spec, "tokenb", "tree"),
            "Snooping / tree": simulate_case_params(spec, "snooping", "tree"),
        }
        for name, spec in specs.items()
    }
    fig5a = {
        name: {
            "TokenB": simulate_case_params(spec, "tokenb", "torus"),
            "Hammer": simulate_case_params(spec, "hammer", "torus"),
            "Directory (DRAM)": simulate_case_params(spec, "directory", "torus"),
            "Directory (perfect)": simulate_case_params(
                spec, "directory", "torus", directory_latency=0.0
            ),
            "TokenB (unlim bw)": simulate_case_params(spec, "tokenb", "torus", None),
            "Hammer (unlim bw)": simulate_case_params(spec, "hammer", "torus", None),
            "Directory (unlim bw)": simulate_case_params(
                spec, "directory", "torus", None
            ),
        }
        for name, spec in specs.items()
    }
    fig5b = {
        name: {
            "TokenB": simulate_case_params(spec, "tokenb", "torus"),
            "Hammer": simulate_case_params(spec, "hammer", "torus"),
            "Directory": simulate_case_params(spec, "directory", "torus"),
        }
        for name, spec in specs.items()
    }
    table2 = {
        name: {"TokenB / torus": simulate_case_params(spec, "tokenb", "torus")}
        for name, spec in specs.items()
    }
    oltp = specs["oltp"]
    section7 = {
        "oltp": {
            "TokenB": simulate_case_params(oltp, "tokenb", "torus"),
            "TokenD": simulate_case_params(oltp, "tokend", "torus"),
            "TokenM": simulate_case_params(oltp, "tokenm", "torus"),
            "Directory": simulate_case_params(oltp, "directory", "torus"),
        }
    }
    return [
        {
            "figure": "fig4a",
            "title": "Figure 4a — Runtime: snooping v. token coherence",
            "render": "runtime",
            "baseline": "Snooping / tree",
            "data": fig4a,
        },
        {
            "figure": "fig4b",
            "title": "Figure 4b — Traffic: snooping v. token coherence",
            "render": "traffic",
            "baseline": "Snooping / tree",
            "data": fig4b,
        },
        {
            "figure": "fig5a",
            "title": "Figure 5a — Runtime: directory v. token coherence",
            "render": "runtime",
            "baseline": "TokenB",
            "data": fig5a,
        },
        {
            "figure": "fig5b",
            "title": "Figure 5b — Traffic: directory v. token coherence",
            "render": "traffic",
            "baseline": "TokenB",
            "data": fig5b,
        },
        {
            "figure": "table2",
            "title": "Table 2 — Overhead due to reissued requests (TokenB, torus)",
            "render": "table2",
            "data": table2,
        },
        {
            "figure": "section7",
            "title": "Section 7 — extension performance protocols (OLTP, torus)",
            "render": "runtime",
            "baseline": "TokenB",
            "data": section7,
        },
    ]


def _series_spec(name: str, figures: tuple[str, ...]) -> CampaignSpec:
    grid = [
        params
        for section in figure_series()
        if section["figure"] in figures
        for variants in section["data"].values()
        for params in variants.values()
    ]
    # Every figure-family spec shares the benchmark suite's store, so
    # the CLI and the benches serve each other's results.
    return CampaignSpec(
        name=name,
        kind="simulate",
        grid=grid,
        default_store=_default_store("benchmarks/.bench_cache"),
    )


def fig4a_spec() -> CampaignSpec:
    return _series_spec("fig4a", ("fig4a",))


def fig4b_spec() -> CampaignSpec:
    return _series_spec("fig4b", ("fig4b",))


def fig5a_spec() -> CampaignSpec:
    return _series_spec("fig5a", ("fig5a",))


def fig5b_spec() -> CampaignSpec:
    return _series_spec("fig5b", ("fig5b",))


def table2_spec() -> CampaignSpec:
    return _series_spec("table2", ("table2",))


def section7_spec() -> CampaignSpec:
    return _series_spec("section7", ("section7",))


def q5_spec() -> CampaignSpec:
    """Question 5 broadcast-scalability points (contended microbench)."""
    from repro.workloads.microbench import contended_sharing_spec

    contended = contended_sharing_spec(ops_per_proc=150)
    grid = [
        simulate_case_params(
            contended, protocol, "torus", None, n_procs=n, ops_per_proc=150
        )
        for n in (16, 32, 64)
        for protocol in ("tokenb", "directory")
    ]
    return CampaignSpec(
        name="q5",
        kind="simulate",
        grid=grid,
        default_store=_default_store("benchmarks/.bench_cache"),
    )


def ablations_spec() -> CampaignSpec:
    """Section 4.2 ablation points (OLTP, TokenB/torus variants)."""
    from repro.workloads import COMMERCIAL_WORKLOADS

    oltp = COMMERCIAL_WORKLOADS["oltp"]
    grid = [simulate_case_params(oltp, "tokenb", "torus")]
    grid.append(
        simulate_case_params(
            oltp, "tokenb", "torus", migratory_optimization=False
        )
    )
    grid.extend(
        simulate_case_params(
            oltp, "tokenb", "torus", reissue_timeout_multiplier=mult
        )
        for mult in (0.5, 2.0, 8.0)
    )
    grid.extend(
        simulate_case_params(oltp, "tokenb", "torus", tokens_per_block=t)
        for t in (16, 64, 256)
    )
    grid.extend(
        simulate_case_params(oltp, "tokenb", "torus", bandwidth=bw)
        for bw in (0.8, 1.6, 3.2, 6.4, None)
    )
    return CampaignSpec(
        name="ablations",
        kind="simulate",
        grid=grid,
        default_store=_default_store("benchmarks/.bench_cache"),
    )


def predict_spec() -> CampaignSpec:
    """Destination-set prediction tradeoff grid (fig-4/5 workloads).

    Every commercial workload × {TokenB, TokenD, Directory, TokenM with
    each predictor, TokenM group + bandwidth-adaptive hybrid}, all on
    the torus — the traffic-vs-latency sweep behind
    ``benchmarks/bench_predict_tradeoff.py`` / ``BENCH_predict.json``.
    The hybrid's adaptation claim needs a constrained-bandwidth point,
    so TokenB / TokenM / hybrid repeat at 0.8 B/ns.
    """
    from repro.config import PREDICTORS

    grid = []
    for spec in _commercial_workloads().values():
        grid.append(simulate_case_params(spec, "tokenb", "torus"))
        grid.append(simulate_case_params(spec, "tokend", "torus"))
        grid.append(simulate_case_params(spec, "directory", "torus"))
        grid.extend(
            simulate_case_params(spec, "tokenm", "torus", predictor=predictor)
            for predictor in PREDICTORS
        )
        grid.append(
            simulate_case_params(
                spec, "tokenm", "torus",
                predictor="group", bandwidth_adaptive=True,
            )
        )
        for protocol, extra in (
            ("tokenb", {}),
            ("tokenm", {"predictor": "group"}),
            ("tokenm", {"predictor": "group", "bandwidth_adaptive": True}),
        ):
            grid.append(
                simulate_case_params(spec, protocol, "torus", 0.8, **extra)
            )
    return CampaignSpec(
        name="predict",
        kind="simulate",
        grid=grid,
        default_store=_default_store("benchmarks/.bench_cache"),
    )


def program_case_params(
    program,
    protocol: str,
    interconnect: str,
    bandwidth: float | None = 3.2,
    directory_latency: float = 80.0,
    n_procs: int = 16,
    **config_overrides,
) -> dict:
    """The ``simulate``-kind params document for one program run.

    Phase lengths travel inside the program document, so there is no
    separate ``ops_per_proc`` — scale the program itself
    (:meth:`~repro.workloads.programs.WorkloadProgram.scaled`).
    """
    config = dict(
        protocol=protocol,
        interconnect=interconnect,
        n_procs=n_procs,
        link_bandwidth_bytes_per_ns=bandwidth,
        directory_latency_ns=directory_latency,
    )
    config.update(config_overrides)
    return {"program": program.to_dict(), "config": config}


#: Constrained-bandwidth point the per-phase ranking comparison runs at
#: (broadcast's fan-out only costs runtime once links can saturate).
WORKLOADS_PHASE_BW = 0.8

#: Protocols the per-phase ranking flip is measured over.
WORKLOADS_PHASE_PROTOCOLS = ("tokenb", "directory", "hammer")

#: Protocols the program-level sweep covers (the performance grid; the
#: null protocol has no performance story to rank).
WORKLOADS_PROGRAM_PROTOCOLS = (
    "tokenb", "snooping", "directory", "hammer", "tokend", "tokenm"
)


def workloads_spec(smoke: bool = False) -> CampaignSpec:
    """Phase-structured workload programs × protocols × topologies.

    The full sweep runs every :data:`CAMPAIGN_PROGRAMS` program over
    the canonical performance-protocol grid (both topologies where
    legal), plus each program's phases in isolation at
    :data:`WORKLOADS_PHASE_BW` so ``bench_workload_suite.py`` can show
    protocol rankings flipping between phases of one program.

    ``smoke=True`` is the CI slice: every program scaled to 80 ops over
    the default-interconnect pairs — minutes-scale, run twice with
    ``--expect-cached`` to prove program scenarios resume from the
    store like any other kind.
    """
    from repro.system.grid import interconnect_for, protocol_grid
    from repro.workloads.programs import CAMPAIGN_PROGRAMS

    grid: list[dict] = []
    if smoke:
        for program in CAMPAIGN_PROGRAMS.values():
            small = program.scaled(80)
            grid.extend(
                program_case_params(
                    small, protocol, interconnect_for(protocol), n_procs=8
                )
                for protocol in ("tokenb", "snooping", "directory",
                                 "tokend", "tokenm")
            )
        # The CI smoke slice keeps its own store (mirrors the smoke
        # campaign job and its actions/cache path).
        return CampaignSpec(
            name="workloads",
            kind="simulate",
            grid=grid,
            default_store=_default_store("campaigns/workloads"),
        )
    for program in CAMPAIGN_PROGRAMS.values():
        grid.extend(
            program_case_params(program, protocol, interconnect)
            for protocol, interconnect in protocol_grid(
                WORKLOADS_PROGRAM_PROTOCOLS
            )
        )
    for program in CAMPAIGN_PROGRAMS.values():
        for index in range(len(program.phases)):
            isolated = program.isolate_phase(index)
            grid.extend(
                program_case_params(
                    isolated, protocol, "torus", WORKLOADS_PHASE_BW
                )
                for protocol in WORKLOADS_PHASE_PROTOCOLS
            )
    # The full grid shares the benchmark suite's store (like every other
    # bench-declared spec), so CLI runs and bench_workload_suite.py
    # serve each other's results.
    return CampaignSpec(
        name="workloads",
        kind="simulate",
        grid=grid,
        default_store=_default_store("benchmarks/.bench_cache"),
    )


def family_case_params(
    family,
    protocol: str,
    interconnect: str,
    bandwidth: float | None = 3.2,
    n_procs: int = 8,
    seed: int = 0,
    **config_overrides,
) -> dict:
    """The ``fork_family``-kind params document for one scenario family."""
    config = dict(
        protocol=protocol,
        interconnect=interconnect,
        n_procs=n_procs,
        seed=seed,
        link_bandwidth_bytes_per_ns=bandwidth,
    )
    config.update(config_overrides)
    return {"family": family.to_dict(), "config": config}


def snapshots_spec(smoke: bool = False) -> CampaignSpec:
    """Warmup-once scenario families across the full protocol grid.

    Each case runs the canonical warmup-dominated demo family
    (:func:`repro.snapshot.fork.demo_family`) with every tail forked
    from the warmup checkpoint; results are bit-identical to cold
    replays (the snapshot determinism goldens pin this), so records are
    content-addressed like any other kind.  ``smoke=True`` is the CI
    slice: a 3-tail family over five default-interconnect pairs, run
    twice with ``--expect-cached`` and a shared
    ``REPRO_CHECKPOINT_STORE`` to prove checkpoint reuse across
    processes.
    """
    from repro.snapshot.fork import demo_family
    from repro.system.grid import ALL_PROTOCOLS, interconnect_for, protocol_grid

    if smoke:
        family = demo_family(warmup_ops=160, tail_ops=30, n_tails=3)
        grid = [
            family_case_params(family, protocol, interconnect_for(protocol))
            for protocol in ("tokenb", "snooping", "directory",
                             "tokend", "tokenm")
        ]
    else:
        family = demo_family(warmup_ops=240, tail_ops=40, n_tails=4)
        grid = [
            family_case_params(family, protocol, interconnect)
            for protocol, interconnect in protocol_grid(ALL_PROTOCOLS)
        ]
    return CampaignSpec(
        name="snapshots",
        kind="fork_family",
        grid=grid,
        default_store=_default_store("campaigns/snapshots"),
    )


def figures_spec() -> CampaignSpec:
    """The union of every figure-suite campaign (the bench prewarm set)."""
    parts = [
        fig4a_spec(),
        fig4b_spec(),
        fig5a_spec(),
        fig5b_spec(),
        table2_spec(),
        section7_spec(),
        q5_spec(),
        ablations_spec(),
        predict_spec(),
    ]
    seen: dict[str, dict] = {}
    for part in parts:
        for case in part.cases():
            seen.setdefault(case.key, case.params)
    return CampaignSpec(
        name="figures",
        kind="simulate",
        grid=list(seen.values()),
        default_store=_default_store("benchmarks/.bench_cache"),
    )


# ----------------------------------------------------------------------
# Explorer / differential / smoke campaigns
# ----------------------------------------------------------------------


def explorer_spec(
    seeds: int = 8,
    seed_base: int = 0,
    protocols=None,
    workloads=None,
    smoke: bool = False,
) -> CampaignSpec:
    """The adversarial schedule explorer's sweep as a campaign.

    ``smoke=True`` matches ``python -m repro.testing.explore --smoke``
    exactly: :data:`~repro.testing.explore.SMOKE_SEEDS` seeds with the
    shared reduced-scale scenario transform.
    """
    from repro.system.grid import ALL_PROTOCOLS
    from repro.testing.explore import (
        EXPLORER_WORKLOADS,
        SMOKE_SEEDS,
        scenario_grid,
        smoke_scenarios,
    )

    scenarios = scenario_grid(
        range(seed_base, seed_base + (min(seeds, SMOKE_SEEDS) if smoke else seeds)),
        protocols if protocols is not None else ALL_PROTOCOLS,
        workloads if workloads is not None else tuple(EXPLORER_WORKLOADS),
    )
    if smoke:
        scenarios = smoke_scenarios(scenarios)
    return CampaignSpec(
        name="explorer",
        kind="explore",
        grid=[scenario.to_dict() for scenario in scenarios],
        default_store=_default_store("campaigns/explorer"),
    )


#: Fault intensities the full resilience campaign sweeps: 1.0 keeps
#: windows short and targeted; 2.0 doubles durations/probabilities and
#: widens corruption to every node.
FAULTS_INTENSITIES = (1.0, 2.0)


def faults_spec(
    seeds: int = 8, seed_base: int = 0, smoke: bool = False
) -> CampaignSpec:
    """The resilience campaign: fault intensity x protocol x topology.

    Every scenario schedules one fault class on an otherwise healthy,
    unperturbed fabric — link flaps, degraded links, corruption drops
    (token protocols only), node pause/resume — with the recovery
    oracles armed; ``repro.campaign report --spec faults`` renders the
    per-fault-class resilience summary.  ``smoke=True`` is the CI
    slice: :data:`~repro.testing.explore.SMOKE_SEEDS` seeds at base
    intensity with the shared reduced-scale transform, run twice with
    ``--expect-cached``.
    """
    from repro.testing.explore import (
        SMOKE_SEEDS,
        fault_scenario_grid,
        smoke_scenarios,
    )

    if smoke:
        scenarios = smoke_scenarios(
            fault_scenario_grid(
                range(seed_base, seed_base + min(seeds, SMOKE_SEEDS)),
                intensities=(1.0,),
            )
        )
    else:
        scenarios = fault_scenario_grid(
            range(seed_base, seed_base + seeds),
            intensities=FAULTS_INTENSITIES,
        )
    return CampaignSpec(
        name="faults",
        kind="explore",
        grid=[scenario.to_dict() for scenario in scenarios],
        default_store=_default_store("campaigns/faults"),
    )


def lineage_spec(
    seeds: int = 4, seed_base: int = 0, smoke: bool = False
) -> CampaignSpec:
    """The custody-audit campaign: token protocols, recorder armed.

    Every scenario runs with the lineage recorder installed and the
    token outcome contract as a standing oracle — half the grid under
    the full adversarial perturbations, half under corruption-drop
    fault windows (the fault class whose chains must terminate as
    ``absorbed-by-reissue``).  ``repro.campaign report --spec lineage``
    renders the custody summary (events, transfers, terminal outcomes,
    absorbed reissues per protocol/topology).  ``smoke=True`` is the CI
    slice: :data:`~repro.testing.explore.SMOKE_SEEDS` seeds with the
    shared reduced-scale transform, run twice with ``--expect-cached``.
    """
    from repro.system.grid import ALL_PROTOCOLS, is_token_protocol
    from repro.testing.explore import (
        SMOKE_SEEDS,
        fault_scenario_grid,
        scenario_grid,
        smoke_scenarios,
    )

    token_protocols = tuple(p for p in ALL_PROTOCOLS if is_token_protocol(p))
    seed_range = range(
        seed_base, seed_base + (min(seeds, SMOKE_SEEDS) if smoke else seeds)
    )
    scenarios = scenario_grid(seed_range, token_protocols) + (
        fault_scenario_grid(
            seed_range, token_protocols, fault_classes=("corrupt",)
        )
    )
    if smoke:
        scenarios = smoke_scenarios(scenarios)
    return CampaignSpec(
        name="lineage",
        kind="explore",
        grid=[scenario.to_dict() for scenario in scenarios],
        default_store=_default_store("campaigns/lineage"),
    )


def differential_spec(seeds: int = 4, seed_base: int = 0, workloads=None) -> CampaignSpec:
    """Cross-protocol conformance: workloads × seeds (flat + phased)."""
    from repro.testing.explore import EXPLORER_WORKLOADS

    names = workloads if workloads is not None else tuple(EXPLORER_WORKLOADS)
    return CampaignSpec(
        name="differential",
        kind="differential",
        base={"n_procs": 4, "ops_per_proc": 40},
        axes=[
            ("workload", list(names)),
            ("seed", list(range(seed_base, seed_base + seeds))),
        ],
        default_store=_default_store("campaigns/differential"),
    )


def smoke_spec() -> CampaignSpec:
    """A small, fast grid campaign: CI runs it twice to prove resume."""
    specs = _commercial_workloads()
    grid = [
        simulate_case_params(
            specs[name], protocol, interconnect, n_procs=8, ops_per_proc=80
        )
        for name in ("apache", "oltp")
        for protocol, interconnect in (
            ("tokenb", "torus"),
            ("directory", "torus"),
            ("snooping", "tree"),
            ("tokend", "torus"),
            ("tokenm", "torus"),
        )
    ]
    return CampaignSpec(
        name="smoke",
        kind="simulate",
        grid=grid,
        default_store=_default_store("campaigns/smoke"),
    )


#: Named specs the CLI and the service resolve (callables taking
#: optional kwargs).
SPEC_BUILDERS = {
    "figures": figures_spec,
    "fig4a": fig4a_spec,
    "fig4b": fig4b_spec,
    "fig5a": fig5a_spec,
    "fig5b": fig5b_spec,
    "table2": table2_spec,
    "section7": section7_spec,
    "q5": q5_spec,
    "ablations": ablations_spec,
    "predict": predict_spec,
    "explorer": explorer_spec,
    "faults": faults_spec,
    "lineage": lineage_spec,
    "differential": differential_spec,
    "smoke": smoke_spec,
    "workloads": workloads_spec,
    "snapshots": snapshots_spec,
}


def build_spec(
    name: str,
    seeds: int = 8,
    seed_base: int = 0,
    smoke: bool = False,
) -> CampaignSpec:
    """Build a named preset, routing only the options it understands.

    The one place that knows which presets take seed/smoke options —
    shared by ``campaign run``'s spec resolution and ``campaign
    submit``'s, so the CLI and the service construct identical specs
    (and therefore identical content-addressed run ids).  Raises
    :class:`KeyError` for unknown names.
    """
    builder = SPEC_BUILDERS[name]
    kwargs: dict = {}
    if name in ("explorer", "faults", "lineage"):
        kwargs = dict(seeds=seeds, seed_base=seed_base, smoke=smoke)
    elif name == "differential":
        kwargs = dict(seeds=seeds, seed_base=seed_base)
    elif name in ("workloads", "snapshots"):
        kwargs = dict(smoke=smoke)
    return builder(**kwargs)


def union_spec_cases(*names):
    """Cases of several named specs, deduplicated (CLI convenience)."""
    return union_cases([SPEC_BUILDERS[name]() for name in names])
