"""Content-addressed on-disk result store with JSON-lines shards.

Layout under one store root::

    shard-00.jsonl .. shard-NN.jsonl   canonical shards (compacted)
    pending-<stream>.jsonl             in-flight appends (one per writer)
    meta.json                          {"n_shards": N, "version": 1}

One record per line::

    {"key": ..., "kind": ..., "fingerprint": ..., "params": ..., "result": ...}

Durability model: every writer (the serial runner, or one worker
process) appends finished records to its *own* pending file and flushes
per record, so concurrent writers never interleave within a line and a
killed run loses at most the line being written.  Loading tolerates that
torn tail — any line that does not parse as a complete record is skipped
and its scenario simply reads as missing, which is exactly what makes a
killed campaign resumable: the rerun executes only the missing keys.

:meth:`CampaignStore.compact` folds pending files into the canonical
shards — records sorted by key, shard chosen by key prefix, written to a
temp file and atomically renamed — so a store's bytes are a pure
function of its record *set*, independent of how many interrupted runs,
workers, or resumes produced it.  That is what makes aggregates (and the
CI-cached store directory) byte-identical across resume histories.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import IO, Iterable

from repro.campaign.spec import ScenarioCase, canonical_json, code_fingerprint

#: Fields every well-formed record carries.
RECORD_FIELDS = ("key", "kind", "fingerprint", "params", "result")

STORE_VERSION = 1

DEFAULT_SHARDS = 16


class StoreBusyError(RuntimeError):
    """Compaction refused: another live writer holds the store's lock.

    Rewriting shards out from under a concurrent appender (a daemon run
    and a CLI ``run`` sharing one store) risks torn interleavings; the
    caller should retry after the writer finishes, or skip compaction.
    """


def _try_flock(handle) -> bool:
    """Advisory-lock a writer's pending file.

    Returns False only when another live writer holds the lock; where
    locking is unsupported (no ``fcntl``, or a filesystem without
    flock) it returns True and protection degrades to best-effort.
    """
    try:
        import fcntl
    except ImportError:
        return True
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        return True
    except OSError:
        return False


def _is_live(path: Path) -> bool:
    """True if another process still holds the writer lock on ``path``."""
    try:
        import fcntl

        with open(path) as probe:
            try:
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return True
            fcntl.flock(probe.fileno(), fcntl.LOCK_UN)
        return False
    except (ImportError, OSError):
        return False


def make_record(case: ScenarioCase, result) -> dict:
    """The store document for one executed case."""
    return {
        "key": case.key,
        "kind": case.kind,
        "fingerprint": case.fingerprint,
        "params": case.params,
        "result": result,
    }


class CampaignStore:
    """A directory of content-addressed campaign results."""

    def __init__(self, root, n_shards: int | None = None):
        self.root = Path(root)
        if n_shards is None:
            # Reopening an existing store adopts its shard count, so a
            # non-default layout stays byte-stable across compactions.
            try:
                meta = json.loads((self.root / "meta.json").read_text())
                n_shards = int(meta["n_shards"])
            except (OSError, ValueError, KeyError, TypeError):
                n_shards = DEFAULT_SHARDS
        self.n_shards = n_shards
        self._index: dict[str, dict] = {}
        self._loaded = False
        self._streams: dict[str, IO[str]] = {}
        #: Lines skipped as torn/corrupt during the last load.
        self.corrupt_lines = 0
        #: True once this process appended records not yet compacted.
        self._dirty = False
        #: Held (shared) while this store has open append streams, so a
        #: concurrent compaction refuses instead of rewriting shards
        #: under us (see :class:`StoreBusyError`).
        self._writer_lock: IO[str] | None = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def shard_index(self, key: str) -> int:
        return int(key[:8], 16) % self.n_shards

    def shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:02d}.jsonl"

    def pending_path(self, stream: str) -> Path:
        return self.root / f"pending-{stream}.jsonl"

    def _data_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("shard-*.jsonl")) + sorted(
            self.root.glob("pending-*.jsonl")
        )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Scan every shard and pending file into the in-memory index.

        Torn or corrupt lines (a killed writer's partial append) are
        counted in :attr:`corrupt_lines` and otherwise ignored — their
        scenarios read as missing and get recomputed.
        """
        index: dict[str, dict] = {}
        corrupt = 0
        for path in self._data_files():
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or any(
                    field not in record for field in RECORD_FIELDS
                ):
                    corrupt += 1
                    continue
                index[record["key"]] = record
        self._index = index
        self.corrupt_lines = corrupt
        self._loaded = True
        return index

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._index

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    def get(self, key: str) -> dict | None:
        self._ensure_loaded()
        return self._index.get(key)

    def result_for(self, case: ScenarioCase):
        """The stored result payload for ``case``, or ``None``."""
        record = self.get(case.key)
        return None if record is None else record["result"]

    def missing(self, cases: Iterable[ScenarioCase]) -> list[ScenarioCase]:
        """The subset of ``cases`` the store holds no record for."""
        self._ensure_loaded()
        return [case for case in cases if case.key not in self._index]

    def records(self) -> list[dict]:
        """All records, sorted by key (deterministic aggregate order)."""
        self._ensure_loaded()
        return [self._index[key] for key in sorted(self._index)]

    def stale_records(self, fingerprint: str | None = None) -> list[dict]:
        """Records whose fingerprint differs from the current code's.

        Stale records are unreachable (current cases hash to new keys);
        they linger harmlessly until :meth:`compact` prunes them.
        """
        current = fingerprint if fingerprint is not None else code_fingerprint()
        return [
            record for record in self.records() if record["fingerprint"] != current
        ]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def writer_lock_path(self) -> Path:
        return self.root / "writers.lock"

    def _acquire_writer_share(self) -> None:
        """Advertise this process as a live writer (shared flock).

        Every appender holds a shared lock on one well-known file;
        :meth:`compact` takes the same lock exclusively, so compaction
        and appends serialize — a daemon and a concurrent CLI ``run``
        against one store cannot interleave torn shard rewrites.  If a
        compaction is mid-flight the acquire blocks until it finishes
        (compaction is bounded and atomic).  Degrades to a no-op where
        ``fcntl`` is unavailable.
        """
        if self._writer_lock is not None:
            return
        try:
            import fcntl
        except ImportError:
            return
        handle = open(self.writer_lock_path(), "a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_SH)
        except OSError:
            handle.close()
            return
        self._writer_lock = handle

    def _try_exclusive_writer_lock(self):
        """The compaction side: ``None`` if any writer is live.

        Returns a held handle to close when done, or the string
        ``"unsupported"`` where flock cannot arbitrate.
        """
        try:
            import fcntl
        except ImportError:
            return "unsupported"
        self.root.mkdir(parents=True, exist_ok=True)
        handle = open(self.writer_lock_path(), "a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return None
        return handle

    def _open_stream(self, stream: str) -> IO[str]:
        """Open (and writer-lock) a pending file for ``stream``.

        If another live writer already owns that stream name — two
        processes both appending as ``serial`` on a shared store — fall
        back to a process-unique name, so no writer's file can be
        unlinked from under it by a concurrent :meth:`compact`.
        """
        handle = open(self.pending_path(stream), "a")
        if _try_flock(handle):
            return handle
        handle.close()
        for attempt in range(3):
            suffix = f"{os.getpid()}" + (f"-{attempt}" if attempt else "")
            handle = open(self.pending_path(f"{stream}-{suffix}"), "a")
            if _try_flock(handle):
                return handle
            handle.close()
        # Locking is evidently unreliable here; degrade to best-effort.
        return open(self.pending_path(f"{stream}-{os.getpid()}"), "a")

    def append(self, record: dict, stream: str = "serial") -> None:
        """Durably append one record to this writer's pending file."""
        handle = self._streams.get(stream)
        if handle is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._acquire_writer_share()
            handle = self._open_stream(stream)
            self._streams[stream] = handle
        handle.write(canonical_json(record) + "\n")
        handle.flush()
        if self._loaded:
            self._index[record["key"]] = record
        self._dirty = True

    def close(self) -> None:
        for handle in self._streams.values():
            try:
                handle.close()
            except OSError:
                pass
        self._streams.clear()
        if self._writer_lock is not None:
            try:
                self._writer_lock.close()  # closing the fd drops the flock
            except OSError:
                pass
            self._writer_lock = None

    def compact(self, prune_stale: bool = False) -> None:
        """Fold pending files into canonical, byte-deterministic shards.

        Raises :class:`StoreBusyError` while any *other* writer holds
        the store's shared writer lock — rewriting shards under a live
        appender is exactly the torn-interleaving hazard the lock
        exists to rule out (this store's own streams are closed first,
        so self-compaction is always allowed).  With the exclusive lock
        held, re-reads everything on disk (killed writers' pending files
        included), writes each shard sorted by key via temp-file +
        atomic rename, then removes the pending files.  A crash mid-way
        leaves at worst duplicate records across shard and pending
        files, which the key-indexed load collapses.
        """
        self.close()
        guard = self._try_exclusive_writer_lock()
        if guard is None:
            raise StoreBusyError(
                f"compaction refused: another writer holds the lock on "
                f"{self.root}"
            )
        try:
            self._compact_locked(prune_stale)
        finally:
            if guard != "unsupported":
                guard.close()

    def _compact_locked(self, prune_stale: bool) -> None:
        self.load()
        records = self.records()
        if prune_stale:
            current = code_fingerprint()
            records = [r for r in records if r["fingerprint"] == current]
            self._index = {r["key"]: r for r in records}
        by_shard: dict[int, list[dict]] = {}
        for record in records:
            by_shard.setdefault(self.shard_index(record["key"]), []).append(record)
        self.root.mkdir(parents=True, exist_ok=True)
        for index in range(self.n_shards):
            shard_records = by_shard.get(index, [])
            target = self.shard_path(index)
            if not shard_records:
                target.unlink(missing_ok=True)
                continue
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    for record in shard_records:
                        handle.write(canonical_json(record) + "\n")
                os.replace(tmp, target)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        for pending in self.root.glob("pending-*.jsonl"):
            if _is_live(pending):
                continue
            pending.unlink(missing_ok=True)
        meta = {"n_shards": self.n_shards, "version": STORE_VERSION}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            handle.write(canonical_json(meta) + "\n")
        os.replace(tmp, self.root / "meta.json")
        self._dirty = False

    @property
    def dirty(self) -> bool:
        """True if uncompacted pending data exists (here or on disk)."""
        return self._dirty or any(self.root.glob("pending-*.jsonl"))

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        self._ensure_loaded()
        return {
            "records": len(self._index),
            "corrupt_lines": self.corrupt_lines,
            "shard_files": len(list(self.root.glob("shard-*.jsonl")))
            if self.root.is_dir()
            else 0,
            "pending_files": len(list(self.root.glob("pending-*.jsonl")))
            if self.root.is_dir()
            else 0,
        }
