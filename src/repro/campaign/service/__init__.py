"""The campaign service: a long-lived daemon owning a shared store.

``python -m repro.campaign serve`` starts :class:`CampaignService`;
clients submit serialized :class:`~repro.campaign.spec.CampaignSpec`
documents over a line-JSON socket (:mod:`repro.campaign.wire`) and —
optionally — stay subscribed for live progress beats in exactly the
heartbeat-beacon format ``status --watch`` tails.

What the daemon adds over one-shot ``campaign run``:

* **Dedup**: submissions are content-hashed (store root + the sorted
  scenario keys, which already fold in params and code fingerprint);
  an identical concurrent submission executes once, with the second
  submitter subscribed to the first's run.  A submission whose run
  already finished is served straight from the registry/store without
  re-scheduling anything.
* **Backpressure**: the run queue is bounded; a submission past the
  bound gets an explicit ``backpressure`` response instead of an
  unbounded queue or a hung socket.
* **Shared-store safety**: the daemon is one more advisory-locked
  writer (:class:`~repro.campaign.store.CampaignStore`), so concurrent
  CLI runs against the same store stay safe, and the daemon's idle-time
  compaction politely refuses while any other writer is live.
* **Idle compaction**: stores dirtied by runs are folded into canonical
  shards when the queue drains, so long-lived service stores converge
  to the same bytes a one-shot ``campaign run`` leaves behind.
"""

from repro.campaign.service.client import (
    ServiceBusy,
    ServiceRejected,
    ping,
    request_shutdown,
    submit_spec,
)
from repro.campaign.service.daemon import CampaignService

__all__ = [
    "CampaignService",
    "ServiceBusy",
    "ServiceRejected",
    "ping",
    "request_shutdown",
    "submit_spec",
]
