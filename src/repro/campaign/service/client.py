"""Client side of the campaign service's line-JSON protocol.

Every helper opens one connection, speaks one request, and (for
watching submitters) consumes the beat stream until the terminal
``done`` message.  The beat payloads are exactly the heartbeat-beacon
documents ``campaign status --watch`` reads from disk, so a socket
watcher and a file watcher render identically.
"""

from __future__ import annotations

from typing import Callable

from repro.campaign import wire
from repro.campaign.spec import CampaignSpec, code_fingerprint


class ServiceRejected(RuntimeError):
    """The daemon refused the submission outright (bad spec, wrong
    source fingerprint, or a draining service)."""


class ServiceBusy(RuntimeError):
    """Backpressure: the daemon's run queue is at its bound.

    Explicit by design — the submitter decides whether to retry, back
    off, or fall back to a direct ``campaign run``; the daemon never
    queues unboundedly or leaves the socket hanging.
    """

    def __init__(self, reason: str, queue_depth: int, queue_limit: int):
        super().__init__(reason)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


def _request(address: str, message: dict, timeout: float | None) -> dict:
    sock = wire.connect(address, timeout=timeout)
    stream = wire.MessageStream(sock)
    try:
        stream.send(message)
        response = stream.read()
    finally:
        stream.close()
    if response is None:
        raise ConnectionError(f"campaign service at {address} closed the connection")
    return response


def ping(address: str, timeout: float | None = 5.0) -> dict:
    """The daemon's status document (queue depth, run counts)."""
    return _request(address, {"type": "ping"}, timeout)


def request_shutdown(address: str, timeout: float | None = 5.0) -> dict:
    """Ask the daemon to drain, compact its stores, and exit.

    Returns the acknowledgement; the daemon *process* exiting is the
    signal that queued runs finished and every store was compacted.
    """
    return _request(address, {"type": "shutdown"}, timeout)


def submit_spec(
    address: str,
    spec: CampaignSpec,
    store: str | None = None,
    jobs: int | None = None,
    watch: bool = True,
    on_beat: Callable[[dict], None] | None = None,
    timeout: float | None = None,
) -> dict:
    """Submit one campaign; return ``{"accepted": ..., "report": ...}``.

    With ``watch=True`` (default) the call blocks until the run
    finishes, invoking ``on_beat`` for every progress beat; otherwise it
    returns as soon as the daemon acknowledges the submission
    (``report`` is ``None``).  Raises :class:`ServiceBusy` on
    backpressure and :class:`ServiceRejected` on refusal, so callers
    cannot mistake either for a completed run.
    """
    sock = wire.connect(address, timeout=timeout)
    stream = wire.MessageStream(sock)
    try:
        message = {
            "type": "submit",
            "spec": spec.to_dict(),
            "store": store,
            "watch": watch,
            "fingerprint": code_fingerprint(),
        }
        if jobs is not None:
            # Omitted (not null) when unset, so the daemon's default
            # parallelism applies.
            message["jobs"] = jobs
        stream.send(message)
        first = stream.read()
        if first is None:
            raise ConnectionError(
                f"campaign service at {address} closed the connection"
            )
        if first.get("type") == "backpressure":
            raise ServiceBusy(
                first.get("reason", "service busy"),
                first.get("queue_depth", -1),
                first.get("queue_limit", -1),
            )
        if first.get("type") == "rejected":
            raise ServiceRejected(first.get("reason", "submission rejected"))
        accepted = first
        if not watch:
            return {"accepted": accepted, "report": None}
        report = None
        for message in stream:
            kind = message.get("type")
            if kind == "beat" and on_beat is not None:
                on_beat(message)
            elif kind == "done":
                report = message.get("report")
                break
        if report is None:
            raise ConnectionError(
                "campaign service disconnected before the run finished "
                f"(run {accepted.get('run_id')})"
            )
        return {"accepted": accepted, "report": report}
    finally:
        stream.close()
