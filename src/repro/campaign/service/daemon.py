"""The campaign daemon: queue, dedup, and execution behind one socket.

One :class:`CampaignService` owns every store it runs campaigns
against.  Execution reuses the exact scheduler/transport stack the CLI
uses (:class:`~repro.campaign.scheduler.CampaignScheduler` over a
serial/pool/fleet transport), so a store produced through the service
is byte-identical, post-compaction, to one produced by ``campaign
run`` — the ``service-smoke`` CI job pins that.

Threading model: one accept thread spawns a short-lived handler thread
per connection; handlers only touch the registry/queue under the
service lock and register subscriber streams.  A single executor
thread owns all store I/O — runs execute one at a time against the
shared stores, and compaction happens on the same thread when the
queue drains, so store objects are never shared across threads.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import threading
from pathlib import Path

from repro.campaign import wire
from repro.campaign.scheduler import CampaignScheduler, RunReport, resolve_jobs
from repro.campaign.spec import CampaignSpec, canonical_json, code_fingerprint
from repro.campaign.store import CampaignStore, StoreBusyError
from repro.campaign.transports import (
    ProcessPoolTransport,
    SerialTransport,
    SocketFleetTransport,
)

#: How long the executor sleeps between wake-up checks while idle.
_IDLE_POLL_S = 0.05


def run_id_for(store_root: str, case_keys) -> str:
    """Content hash identifying one (store, scenario set) submission.

    The scenario keys already fold in kind, params, and the code
    fingerprint, so two submissions collide exactly when they would do
    identical work against the same store — the dedup criterion.
    """
    digest = hashlib.sha256(
        canonical_json({"store": str(store_root), "keys": sorted(case_keys)}).encode()
    )
    return digest.hexdigest()[:16]


class _Run:
    """One deduplicated unit of service work and its subscribers."""

    def __init__(self, run_id: str, spec: CampaignSpec, cases, store_root: str,
                 jobs: int | None):
        self.run_id = run_id
        self.spec = spec
        self.cases = cases
        self.store_root = store_root
        self.jobs = jobs
        self.state = "queued"  # queued -> running -> done
        self.submitters = 1
        self.report: RunReport | None = None
        self.subscribers: list[wire.MessageStream] = []


class CampaignService:
    """A persistent campaign daemon on one TCP or Unix socket address.

    ``queue_limit`` bounds *queued* runs (the running one excluded);
    ``jobs`` is the default per-run parallelism (submissions may
    override it).  ``fleet`` optionally names a second listen address:
    when given, every run executes over one persistent
    :class:`SocketFleetTransport` that ``python -m repro.campaign
    worker`` processes attach to, instead of a local pool.
    """

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        queue_limit: int = 8,
        jobs: int | None = 1,
        fingerprint: str | None = None,
        fleet: str | None = None,
        fleet_timeout: float | None = 60.0,
    ):
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        self.queue_limit = max(1, queue_limit)
        self.jobs = jobs
        self._server = wire.listen(address)
        self.address = wire.bound_address(self._server)
        self._lock = threading.Lock()
        self._runs: dict[str, _Run] = {}
        self._queue: collections.deque[_Run] = collections.deque()
        self._stores: dict[str, CampaignStore] = {}
        self._dirty_roots: set[str] = set()
        self._wakeup = threading.Event()
        self._draining = False
        self._closing = False
        self._fleet: SocketFleetTransport | None = None
        self._fleet_address = fleet
        self._fleet_timeout = fleet_timeout
        #: Where fleet workers attach, once :meth:`start` binds it.
        self.fleet_address: str | None = None
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._fleet_address is not None:
            # One fleet shared by every run: workers stay attached and
            # idle-poll between campaigns.
            self._fleet = SocketFleetTransport(
                # Store rebinding happens per run (see _execute).
                CampaignStore(Path(".")),
                address=self._fleet_address,
                fingerprint=self.fingerprint,
                worker_timeout=self._fleet_timeout,
            )
            self.fleet_address = self._fleet.address
        for target, name in (
            (self._accept_loop, "service-accept"),
            (self._executor_loop, "service-executor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def serve_forever(self) -> None:
        """Start and block until a ``shutdown`` message (or :meth:`stop`)."""
        if not self._threads:
            self.start()
        for thread in self._threads:
            thread.join()

    def stop(self) -> None:
        """Stop accepting and exit once the current run finishes."""
        self._closing = True
        self._wakeup.set()
        try:
            self._server.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        # Poll with a timeout rather than blocking forever: closing a
        # listening socket does not reliably wake a blocked accept(), and
        # this thread must exit for serve_forever (and the daemon
        # process) to terminate on shutdown.
        self._server.settimeout(0.2)
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            conn.settimeout(None)
            threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True
            ).start()

    def _serve_client(self, conn) -> None:
        stream = wire.MessageStream(conn)
        keep_open = False
        try:
            message = stream.read()
            if message is None:
                return
            kind = message.get("type")
            if kind == "ping":
                stream.send({"type": "pong", **self._status()})
            elif kind == "shutdown":
                # Acknowledge, then drain: the executor finishes queued
                # runs, compacts every dirty store, and exits — the
                # process ending is the caller's "durably settled" cue.
                stream.send({"type": "bye", **self._status()})
                self._draining = True
                self._wakeup.set()
            elif kind == "submit":
                keep_open = self._handle_submit(stream, message)
            else:
                stream.send(
                    {"type": "rejected",
                     "reason": f"unknown message type {kind!r}"}
                )
        finally:
            if not keep_open:
                stream.close()

    def _status(self) -> dict:
        with self._lock:
            return {
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "runs": {
                    state: sum(1 for r in self._runs.values() if r.state == state)
                    for state in ("queued", "running", "done")
                },
                "fingerprint": self.fingerprint,
            }

    def _handle_submit(self, stream: wire.MessageStream, message: dict) -> bool:
        """Queue, dedup, or refuse one submission; True keeps the socket.

        The accepted/backpressure response and any subscriber
        registration happen under one lock acquisition, so a subscriber
        can never miss the terminal ``done`` broadcast (which the
        executor also sends under the lock).
        """
        fingerprint = message.get("fingerprint")
        if fingerprint != self.fingerprint:
            # A submitter built from different sources would hash every
            # scenario to keys this daemon's records can never satisfy.
            stream.send(
                {
                    "type": "rejected",
                    "reason": "source fingerprint mismatch: client "
                    f"{fingerprint!r} != service {self.fingerprint!r}",
                }
            )
            return False
        try:
            spec = CampaignSpec.from_dict(message["spec"])
            cases = spec.cases()
        except (KeyError, TypeError, ValueError) as exc:
            stream.send(
                {"type": "rejected", "reason": f"bad spec: {exc}"}
            )
            return False
        store_root = str(
            message.get("store")
            or spec.default_store
            or f".campaign_store/{spec.name}"
        )
        run_id = run_id_for(store_root, [case.key for case in cases])
        watch = bool(message.get("watch", True))
        with self._lock:
            run = self._runs.get(run_id)
            deduped = run is not None
            if run is None:
                if self._draining or self._closing:
                    stream.send(
                        {"type": "rejected", "reason": "service shutting down"}
                    )
                    return False
                if len(self._queue) >= self.queue_limit:
                    stream.send(
                        {
                            "type": "backpressure",
                            "reason": "run queue full — resubmit later",
                            "queue_depth": len(self._queue),
                            "queue_limit": self.queue_limit,
                        }
                    )
                    return False
                run = _Run(run_id, spec, cases, store_root,
                           message.get("jobs", self.jobs))
                self._runs[run_id] = run
                self._queue.append(run)
                self._wakeup.set()
            else:
                run.submitters += 1
            stream.send(
                {
                    "type": "accepted",
                    "run_id": run_id,
                    "deduped": deduped,
                    "state": run.state,
                    "spec": spec.name,
                    "store": store_root,
                    "total": len(cases),
                    "queue_depth": len(self._queue),
                }
            )
            if not watch:
                return False
            if run.state == "done":
                # Cached serving: the whole campaign is a registry hit.
                stream.send(self._done_message(run))
                return False
            run.subscribers.append(stream)
            return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            run = None
            with self._lock:
                if self._queue:
                    run = self._queue.popleft()
            if run is None:
                # Idle: fold dirty stores, then either exit (draining/
                # stopped) or wait for the next submission.
                self._compact_idle()
                if self._closing or self._draining:
                    self.stop()
                    if self._fleet is not None:
                        self._fleet.shutdown()
                    return
                self._wakeup.wait(_IDLE_POLL_S)
                self._wakeup.clear()
                continue
            self._execute(run)

    def _store(self, root: str) -> CampaignStore:
        store = self._stores.get(root)
        if store is None:
            store = self._stores[root] = CampaignStore(root)
        return store

    def _execute(self, run: _Run) -> None:
        with self._lock:
            run.state = "running"
        store = self._store(run.store_root)
        scheduler = CampaignScheduler(
            store,
            # Compaction is the executor's idle-time job, not the run's:
            # back-to-back submissions should not each pay a rewrite.
            compact=False,
            heartbeat=Path(store.root) / "heartbeat.json",
            heartbeat_sink=lambda payload: self._broadcast(
                run, {"type": "beat", "run_id": run.run_id, **payload}
            ),
        )
        transport = None
        try:
            if self._fleet is not None:
                self._fleet.store = store
                report = scheduler.run(run.cases, self._fleet)
            else:
                jobs = resolve_jobs(run.jobs, len(store.missing(run.cases)))
                transport = (
                    SerialTransport(store)
                    if jobs == 1
                    else ProcessPoolTransport(store, jobs)
                )
                report = scheduler.run(run.cases, transport)
        except Exception as exc:  # noqa: BLE001 — a run must never kill the daemon
            report = RunReport(
                total=len(run.cases), executed=0, cached=0,
                failures=[{"key": "*",
                           "error": f"{type(exc).__name__}: {exc}"}],
            )
        finally:
            if transport is not None:
                transport.shutdown()
        if store.dirty:
            self._dirty_roots.add(run.store_root)
        with self._lock:
            run.report = report
            run.state = "done"
            subscribers, run.subscribers = run.subscribers, []
        done = self._done_message(run)
        for subscriber in subscribers:
            try:
                subscriber.send(done)
            except OSError:
                pass
            subscriber.close()

    def _done_message(self, run: _Run) -> dict:
        report = run.report
        return {
            "type": "done",
            "run_id": run.run_id,
            "submitters": run.submitters,
            "report": dataclasses.asdict(report) if report else None,
        }

    def _broadcast(self, run: _Run, message: dict) -> None:
        with self._lock:
            subscribers = list(run.subscribers)
        for subscriber in subscribers:
            try:
                subscriber.send(message)
            except OSError:
                with self._lock:
                    if subscriber in run.subscribers:
                        run.subscribers.remove(subscriber)
                subscriber.close()

    def _compact_idle(self) -> None:
        for root in sorted(self._dirty_roots):
            store = self._store(root)
            try:
                store.compact()
            except StoreBusyError:
                # Another writer (a concurrent CLI run) is live: leave
                # its pending files alone and retry on a later idle tick.
                store.load()
                continue
            except OSError:
                continue
            self._dirty_roots.discard(root)
