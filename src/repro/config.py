"""System configuration with Table 1 defaults.

The default :class:`SystemConfig` reproduces the paper's target system: a
16-processor SPARC-like glueless multiprocessor at 1 GHz (so 1 ns = 1
cycle), 128 kB split L1s (2 ns), a 4 MB unified L2 (6 ns), 64-byte blocks,
80 ns DRAM, 6 ns memory/directory controllers, and 3.2 GB/s (= 3.2
bytes/ns), 15 ns point-to-point links.

Protocol and interconnect are orthogonal axes: ``protocol`` is one of
``"tokenb"``, ``"snooping"``, ``"directory"``, ``"hammer"``;
``interconnect`` is ``"torus"`` or ``"tree"``.  Traditional snooping
requires the totally-ordered tree (Section 2) — the builder rejects
snooping-on-torus just as the paper's Figure 4 marks it "not applicable".
"""

from __future__ import annotations

import dataclasses

PROTOCOLS = (
    "tokenb",
    "snooping",
    "directory",
    "hammer",
    "null-token",
    "tokend",
    "tokenm",
)
INTERCONNECTS = ("torus", "tree")

#: Destination-set predictors TokenM can run (repro.predict.predictors).
PREDICTORS = ("owner", "broadcast-if-shared", "group")


@dataclasses.dataclass
class SystemConfig:
    """Full system parameterization (defaults = Table 1)."""

    # Topology
    n_procs: int = 16
    protocol: str = "tokenb"
    interconnect: str = "torus"

    # Interconnect (Section 5.2)
    link_latency_ns: float = 15.0
    #: 3.2 GB/s = 3.2 bytes/ns; None models unlimited bandwidth.
    link_bandwidth_bytes_per_ns: float | None = 3.2
    tree_fanout: int = 4

    # Coherent memory system (Table 1)
    block_bytes: int = 64
    l1_bytes: int = 128 * 1024
    l1_assoc: int = 4
    l1_latency_ns: float = 2.0
    l2_bytes: int = 4 * 1024 * 1024
    l2_assoc: int = 4
    l2_latency_ns: float = 6.0
    dram_latency_ns: float = 80.0
    controller_latency_ns: float = 6.0
    #: Directory-state lookup cost.  The base system stores the directory
    #: in main-memory DRAM (80 ns); 0.0 models the "perfect" directory
    #: cache of Section 5.1.
    directory_latency_ns: float = 80.0

    # Processor-side (stands in for the 128-entry ROB's memory-level
    # parallelism; Section 5.3's dynamically scheduled cores).
    mshr_capacity: int = 8
    max_outstanding_misses: int = 4

    # Token Coherence (Sections 3 and 4.2)
    tokens_per_block: int | None = None  # default: n_procs
    reissue_limit: int = 4
    reissue_timeout_multiplier: float = 2.0
    persistent_timeout_multiplier: float = 10.0
    backoff_initial_ns: float = 50.0
    backoff_max_ns: float = 800.0

    #: Migratory-sharing optimization (Cox/Fowler, Stenstrom et al.),
    #: implemented in all four protocols per Section 4.2.
    migratory_optimization: bool = True

    # Destination-set prediction (Section 7; repro.predict).  The
    # predictor drives TokenM's multicast sets; the table knobs also
    # bound TokenD's soft-state directory.
    predictor: str = "group"
    #: The traffic-vs-latency dial: a small table predicts only hot,
    #: recently-active blocks (TokenB-like runtime, modest savings);
    #: larger tables multicast more and save more bandwidth at a
    #: reissue-latency cost (see BENCH_predict.json).
    predictor_table_entries: int = 128
    #: Indexing granularity: consecutive blocks sharing one table entry
    #: (power of two; 1 = per-block).
    predictor_macroblock_blocks: int = 1
    #: Group-predictor decay period (trainings per entry between decays).
    predictor_history_depth: int = 4
    #: Reissue-timer multiplier for a *predicted* first attempt: silence
    #: usually means the guess was wrong, so TokenM falls back to
    #: broadcast faster than TokenB's general-purpose timeout.
    predicted_reissue_timeout_multiplier: float = 1.5

    #: Bandwidth-adaptive hybrid (Section 7 / [29]): a TokenM node
    #: broadcasts while its outgoing links are idle and switches to
    #: predicted multicast above the utilization threshold.
    bandwidth_adaptive: bool = False
    hybrid_utilization_threshold: float = 0.05
    #: Backlog-normalization window for the utilization estimate.
    hybrid_window_ns: float = 200.0

    seed: int = 42

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"protocol must be one of {PROTOCOLS}")
        if self.interconnect not in INTERCONNECTS:
            raise ValueError(f"interconnect must be one of {INTERCONNECTS}")
        if self.protocol == "snooping" and self.interconnect != "tree":
            raise ValueError(
                "traditional snooping requires the totally-ordered tree "
                "interconnect (Section 2); the torus provides no total order"
            )
        if self.n_procs < 2:
            raise ValueError("need at least 2 processors")
        if self.tokens_per_block is not None and self.tokens_per_block < self.n_procs:
            raise ValueError(
                "T must be at least the number of processors (Section 3.1)"
            )
        if self.reissue_limit < 0:
            raise ValueError("reissue_limit must be >= 0")
        if self.max_outstanding_misses < 1 or self.mshr_capacity < 1:
            raise ValueError("need at least one outstanding miss")
        if self.predictor not in PREDICTORS:
            raise ValueError(f"predictor must be one of {PREDICTORS}")
        if self.predictor_table_entries < 1:
            raise ValueError("predictor table needs at least one entry")
        macro = self.predictor_macroblock_blocks
        if macro < 1 or macro & (macro - 1):
            raise ValueError(
                "predictor_macroblock_blocks must be a power of two"
            )
        if self.predictor_history_depth < 1:
            raise ValueError("predictor_history_depth must be >= 1")
        if self.predicted_reissue_timeout_multiplier <= 0:
            raise ValueError(
                "predicted_reissue_timeout_multiplier must be positive"
            )
        if not 0.0 <= self.hybrid_utilization_threshold <= 1.0:
            raise ValueError(
                "hybrid_utilization_threshold must be in [0, 1]"
            )
        if self.hybrid_window_ns <= 0:
            raise ValueError("hybrid_window_ns must be positive")

    @property
    def total_tokens(self) -> int:
        """T: tokens per block (>= number of processors, Section 3.1)."""
        return (
            self.tokens_per_block
            if self.tokens_per_block is not None
            else self.n_procs
        )

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def token_state_bits(self) -> int:
        """Per-block token storage: valid + owner + ceil(log2(T)) bits.

        Section 3.1's storage argument: 64 tokens on 64-byte blocks costs
        one byte (1.6% overhead).
        """
        count_bits = max(1, (self.total_tokens).bit_length())
        return 2 + count_bits
