"""Faulty-fabric fault injection: sustained, structural failures.

The paper's decoupling claim — correctness comes from token counting
and persistent requests, not from the fabric behaving — is only tested
if the fabric actually misbehaves.  This package schedules and installs
link flaps, bandwidth degradation, corruption-detection drops, and node
pause/resume windows onto a built system, with the same zero-cost
``__class__``-swap install the perturbation layer uses; see
:mod:`repro.faults.plan` for the schedule vocabulary and
:mod:`repro.faults.inject` for the semantics.
"""

from repro.faults.inject import (
    FaultInjector,
    FaultyLink,
    FaultyTorus,
    FaultyTree,
    PauseGate,
)
from repro.faults.plan import (
    FAULT_KINDS,
    LOSS_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    generate_plan,
    link_count,
)

__all__ = [
    "FAULT_KINDS",
    "LOSS_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultyLink",
    "FaultyTorus",
    "FaultyTree",
    "PauseGate",
    "generate_plan",
    "link_count",
]
