"""Fault schedules: what breaks, when, and for how long.

A :class:`FaultPlan` is a declarative schedule of *sustained, structural*
fabric failures — unlike the per-message jitter in
:mod:`repro.testing.perturb`, each :class:`FaultEvent` opens a window
during which a piece of the machine misbehaves:

``link_flap``
    The targeted link is down for the window.  On token protocols every
    transient request (GETS/GETM) whose crossing would overlap the
    outage is dropped — in-flight or newly sent; all other traffic (and
    *all* traffic on the ordered baselines, where loss is illegal)
    queues with backpressure and crosses once the link restores,
    modeling a reliable link layer that retransmits after the flap.
``link_degrade``
    The targeted link's bandwidth is divided by ``factor`` for the
    window — congestion collapse.  A no-op under unlimited bandwidth
    (there is no serialization to stretch).
``corrupt``
    For the window, each transient request arriving at the target node
    (or at every node when ``target is None``) is independently
    discarded with probability ``prob``, as if its CRC check failed.
    The only loss-class fault — token protocols only.
``node_pause``
    The target node stops processing incoming messages for the window
    (GC pause / scheduler stall analogue); deliveries buffer in arrival
    order and drain when the window closes.

Plans are plain data: ``to_dict``/``from_dict`` round-trip losslessly so
a plan travels inside a scenario document and content-addresses like any
other campaign parameter, and :func:`generate_plan` derives a plan
deterministically from a seed via ``derive_rng`` — the same seed always
breaks the same links at the same times.

Link targets are positions in ``Interconnect.all_links()`` (a stable,
documented order per topology); :func:`link_count` computes the valid
range without building a network.
"""

from __future__ import annotations

import dataclasses
import math

from repro.sim.rng import derive_rng
from repro.system.grid import is_token_protocol

#: Every fault class, in schedule-generation order.
FAULT_KINDS = ("link_flap", "link_degrade", "corrupt", "node_pause")

#: Fault classes that destroy messages outright.  Token-protocol
#: correctness survives arbitrary loss of transient requests; the
#: ordered baselines do not, so these are token-only (``link_flap`` is
#: *not* here — on baselines it degenerates to legal backpressure).
LOSS_FAULT_KINDS = ("corrupt",)

#: Kinds whose ``target`` addresses a link (index into ``all_links()``).
_LINK_KINDS = ("link_flap", "link_degrade")


def link_count(interconnect: str, n_nodes: int, fanout: int = 4) -> int:
    """Directed links a built ``interconnect`` of ``n_nodes`` will have.

    Mirrors the constructors: the torus has four links per node; the
    tree has one up and one down link per node plus one in-root and one
    root-out link per leaf-switch group.
    """
    if interconnect == "torus":
        return 4 * n_nodes
    if interconnect == "tree":
        return 2 * n_nodes + 2 * math.ceil(n_nodes / fanout)
    raise ValueError(f"unknown interconnect {interconnect!r}")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One fault window.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        start_ns: Window opening time.
        duration_ns: Window length (must be positive).
        target: Link index (``link_flap``/``link_degrade``), node id
            (``node_pause``), or node id / ``None`` for every node
            (``corrupt``).
        factor: Bandwidth divisor while degraded (``link_degrade``).
        prob: Per-message discard probability (``corrupt``).
    """

    kind: str
    start_ns: float
    duration_ns: float
    target: int | None = None
    factor: float = 1.0
    prob: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )
        if self.start_ns < 0:
            raise ValueError("start_ns must be nonnegative")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if self.kind != "corrupt" and self.target is None:
            raise ValueError(f"{self.kind} events need a target")
        if self.target is not None and self.target < 0:
            raise ValueError("target must be nonnegative")
        if self.kind == "link_degrade" and self.factor <= 1.0:
            raise ValueError("link_degrade factor must be > 1")
        if self.kind == "corrupt" and not 0.0 < self.prob <= 1.0:
            raise ValueError("corrupt prob must be in (0, 1]")

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclasses.dataclass
class FaultPlan:
    """A seeded schedule of fault windows.  Empty plan = healthy fabric.

    ``seed`` scopes the RNG streams the *installation* consumes (the
    corrupt fault's per-node discard rolls); the windows themselves are
    fixed data, whether hand-written or generated.
    """

    seed: int = 0
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        self.events = tuple(self.events)

    def any_active(self) -> bool:
        return bool(self.events)

    def kinds(self) -> list[str]:
        """The distinct fault classes scheduled, in canonical order."""
        present = {event.kind for event in self.events}
        return [kind for kind in FAULT_KINDS if kind in present]

    def events_of(self, *kinds: str) -> list[FaultEvent]:
        return [event for event in self.events if event.kind in kinds]

    def link_events(self) -> list[FaultEvent]:
        return self.events_of(*_LINK_KINDS)

    def loss_kinds(self) -> list[str]:
        """The scheduled fault classes that are only legal on token protocols."""
        return [kind for kind in self.kinds() if kind in LOSS_FAULT_KINDS]

    def last_end_ns(self) -> float:
        """When the final fault window closes (0.0 for an empty plan)."""
        return max((event.end_ns for event in self.events), default=0.0)

    def validate_for_protocol(self, protocol: str) -> None:
        """Enforce the legality matrix :class:`PerturbSpec` also obeys.

        Ordered baselines assume lossless delivery, so scheduling a
        loss-class fault on them must raise — never silently fall back
        to queueing.
        """
        illegal = self.loss_kinds()
        if illegal and not is_token_protocol(protocol):
            raise ValueError(
                f"fault kinds {illegal} are only legal on token "
                f"protocols, not {protocol!r} (baseline protocols "
                "assume ordered, lossless request delivery)"
            )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": [dataclasses.asdict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=payload.get("seed", 0),
            events=tuple(
                FaultEvent(**event) for event in payload.get("events", ())
            ),
        )


def generate_plan(
    seed: int,
    kinds,
    *,
    n_links: int,
    n_nodes: int,
    horizon_ns: float,
    events_per_kind: int = 1,
    intensity: float = 1.0,
) -> FaultPlan:
    """Derive a fault schedule deterministically from ``seed``.

    Windows open in the first ~60% of ``horizon_ns`` (so a run of about
    that length actually experiences them) and last a seeded fraction of
    the horizon scaled by ``intensity``; targets are drawn uniformly
    over the valid range per kind.  Every draw comes from a
    ``derive_rng`` stream scoped under ``(seed, kind, index)``, so adding
    a kind to the mix never shifts another kind's schedule.
    """
    if horizon_ns <= 0:
        raise ValueError("horizon_ns must be positive")
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    events = []
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (known: {FAULT_KINDS})"
            )
        for index in range(events_per_kind):
            rng = derive_rng(seed, "faults", kind, index)
            start = rng.uniform(0.10, 0.60) * horizon_ns
            duration = rng.uniform(0.08, 0.18) * horizon_ns * intensity
            if kind in _LINK_KINDS:
                target: int | None = rng.randrange(n_links)
            elif kind == "node_pause":
                target = rng.randrange(n_nodes)
            else:  # corrupt: one targeted node or, at high
                # intensity, fabric-wide CRC trouble.
                target = None if intensity >= 2.0 else rng.randrange(n_nodes)
            factor = rng.uniform(4.0, 12.0) * intensity
            prob = min(0.9, rng.uniform(0.10, 0.25) * intensity)
            events.append(
                FaultEvent(
                    kind=kind,
                    start_ns=round(start, 3),
                    duration_ns=round(duration, 3),
                    target=target,
                    factor=round(factor, 3) if kind == "link_degrade" else 1.0,
                    prob=round(prob, 4) if kind == "corrupt" else 0.0,
                )
            )
    return FaultPlan(seed=seed, events=tuple(events))
