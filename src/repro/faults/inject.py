"""Install a :class:`~repro.faults.plan.FaultPlan` onto a built system.

Install mechanics mirror :class:`repro.testing.perturb.Perturber`:
``Link`` reserves a ``_fault`` slot its base implementation never reads;
:meth:`FaultInjector.install` fills the slot and reassigns ``__class__``
to :class:`FaultyLink` (``__slots__ = ()``, identical layout).  When any
link fault is armed the interconnect itself is reassigned to
:class:`FaultyTorus` / :class:`FaultyTree`, which route every hop —
including the torus's batched multicast and unlimited-bandwidth
broadcast fast path — through a per-hop drop check, exactly as
``JitteredTorus`` re-routes for jitter.  A fault-free system therefore
runs byte-for-byte the same code as before this package existed (the
determinism goldens pin this).

Fault semantics
---------------
* **Flap** — while a link is down, transient requests (GETS/GETM) whose
  crossing would overlap the outage are *dropped* on token protocols
  (both "sent while down" and "in flight when it goes down": the check
  covers the whole serialization + propagation interval).  Everything
  else — token carriers, data, persistent messages, and all baseline
  traffic — *queues with backpressure*: serialization cannot start
  inside an outage, modeling a reliable link layer that retransmits
  after the flap.  Messages already past their full crossing interval
  are untouched.
* **Degrade** — serialization time is multiplied by the window's factor
  for crossings starting inside it.
* **Corrupt** — a receiver-side wrapper discards transient requests
  with the event's probability while its window is open (seeded
  per-node RNG streams, consumed in delivery order).
* **Pause** — a :class:`PauseGate` wraps the node's delivery handler:
  messages arriving inside a pause window buffer in arrival order and
  are flushed when the window closes (the flush is scheduled at
  install, so it fires before any same-timestamp arrival).  The gates'
  buffers must be empty at end of run — a recovery oracle.

Every decision is a pure function of (plan, scenario seed, event
order), so a faulted run replays bit-identically.
"""

from __future__ import annotations

from repro.coherence.messages import TRANSIENT_REQUEST_MTYPES
from repro.faults.plan import FaultPlan
from repro.interconnect.link import Link
from repro.interconnect.torus import TorusInterconnect
from repro.interconnect.tree import ORDERED_VNET, OrderedTreeInterconnect
from repro.sim.rng import derive_rng
from repro.system.grid import is_token_protocol


class LinkFaultState:
    """Per-link fault windows, prebound for the occupy path.

    ``down`` is a sorted tuple of merged ``(start, end)`` outages;
    ``degraded`` a sorted tuple of ``(start, end, factor)``;
    ``drop_mode`` is True on token protocols (flapped links lose
    droppable messages instead of queueing them); ``stats`` is the
    injector's shared counter dict; ``recorder`` the optional lineage
    recorder that must learn about dropped request chains.
    """

    __slots__ = ("down", "degraded", "drop_mode", "stats", "recorder")

    def __init__(self, down, degraded, drop_mode, stats, recorder=None) -> None:
        self.down = tuple(down)
        self.degraded = tuple(degraded)
        self.drop_mode = drop_mode
        self.stats = stats
        self.recorder = recorder


class FaultyLink(Link):
    """Link honouring flap (queue or drop) and degrade windows.

    ``occupy`` keeps the base contract — claim the slot, account the
    crossing, return the arrival time — but pushes the serialization
    start past outages and stretches it through degrade windows.
    :meth:`drops` is the *pre*-occupy question the faulty interconnects
    ask for droppable messages; a dropped message never occupies the
    link (nothing was serialized) and never records traffic.
    """

    __slots__ = ()

    def occupy(self, size_bytes, category):
        state = self._fault
        sim = self.sim
        now = sim._now
        free = self._free_at
        start = now if now >= free else free
        for begin, end in state.down:
            if begin <= start < end:
                state.stats["flap_queued"] += 1
                start = end
        if self.bandwidth is not None:
            serialization = size_bytes / self.bandwidth
        else:
            serialization = 0.0
        for begin, end, factor in state.degraded:
            if begin <= start < end:
                state.stats["degraded_crossings"] += 1
                serialization *= factor
                break
        busy_until = start + serialization
        self._free_at = busy_until
        self._crossings += 1
        record = self._record
        if record is not None:
            record(category, size_bytes)
        return busy_until + self.latency

    def drops(self, msg) -> bool:
        """True if a droppable message entering now is lost to a flap.

        The whole crossing interval — queueing behind ``_free_at``,
        serialization, propagation — is checked against the outage
        windows, so this also catches "in flight when the link goes
        down", not just "sent while down".
        """
        state = self._fault
        if not state.drop_mode or not state.down:
            return False
        if msg.mtype not in TRANSIENT_REQUEST_MTYPES:
            return False
        now = self.sim._now
        free = self._free_at
        start = now if now >= free else free
        if self.bandwidth is not None:
            serialization = msg.size_bytes / self.bandwidth
        else:
            serialization = 0.0
        end = start + serialization + self.latency
        for begin, outage_end in state.down:
            if start < outage_end and end > begin:
                state.stats["flap_dropped"] += 1
                if state.recorder is not None:
                    state.recorder.request_dropped(
                        msg.block, msg.requester, -1, now
                    )
                return True
        return False


class FaultyTorus(TorusInterconnect):
    """Torus routing every hop through the faulty per-link path.

    Like :class:`~repro.testing.perturb.JitteredTorus`, the batched
    multicast (which inlines ``Link.occupy``) and the
    unlimited-bandwidth broadcast fast path (which precomputes subtree
    arrivals) are replaced by per-hop ``occupy`` + ``post_at`` fan-out —
    otherwise broadcast hops would never see the fault windows.  Each
    hop first asks the link whether it drops the message; a dropped hop
    posts nothing, so the whole subtree behind it is lost (the
    downstream copies were never created — exactly a flapped fabric).
    """

    def _forward_unicast(self, msg, plan, hop):
        link, next_node = plan[hop]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        if hop + 1 == len(plan):
            self.sim.post_at(arrival, self._deliver, next_node, msg)
        else:
            self.sim.post_at(arrival, self._forward_unicast, msg, plan, hop + 1)

    def _fanout_multicast(self, msg, at_node, plan):
        post_at = self.sim.post_at
        arrive = self._multicast_arrive
        size = msg.size_bytes
        category = msg.category
        for link, child in plan[at_node]:
            if link.drops(msg):
                continue
            post_at(link.occupy(size, category), arrive, msg, child, plan)

    def _broadcast_unlimited(self, msg):
        # Precomputed subtree arrivals assume healthy links; fall back
        # to hop-by-hop fan-out (occupy handles bandwidth=None).
        self._fanout_multicast(msg, msg.src, self._multicast_plans(msg.src))


class FaultyTree(OrderedTreeInterconnect):
    """Tree whose four stages each consult the faulty per-link path.

    Only token protocols may lose messages, and they never use the
    ordered vnet, so the root's total-order stamping is untouched: an
    ordered broadcast can be delayed by backpressure but never dropped.
    """

    # -- unicast ------------------------------------------------------

    def send(self, msg):
        if msg.is_broadcast():
            raise ValueError("use broadcast() for broadcast messages")
        if msg.vnet == ORDERED_VNET:
            raise ValueError(
                "ordered vnet carries only broadcasts (total-order contract)"
            )
        if msg.src == msg.dst:
            self.sim.post(0.0, self._deliver, msg.dst, msg)
            return
        link = self._up[msg.src]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._unicast_at_in_switch, msg)

    def _unicast_at_in_switch(self, msg):
        link = self._in_root[msg.src // self.fanout]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._unicast_at_root, msg)

    def _unicast_at_root(self, msg):
        link = self._root_out[msg.dst // self.fanout]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._unicast_at_out_switch, msg)

    def _unicast_at_out_switch(self, msg):
        link = self._down[msg.dst]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._deliver, msg.dst, msg)

    # -- broadcast ----------------------------------------------------

    def broadcast(self, msg, include_self=False):
        if msg.vnet == ORDERED_VNET:
            include_self = True
        link = self._up[msg.src]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._broadcast_at_in_switch, msg, include_self)

    def _broadcast_at_in_switch(self, msg, include_self):
        link = self._in_root[msg.src // self.fanout]
        if link.drops(msg):
            return
        arrival = link.occupy(msg.size_bytes, msg.category)
        self.sim.post_at(arrival, self._broadcast_at_root, msg, include_self)

    def _broadcast_at_root(self, msg, include_self):
        if msg.vnet == ORDERED_VNET:
            msg.ordered_seq = self._next_order_seq
            self._next_order_seq += 1
        sim = self.sim
        size = msg.size_bytes
        category = msg.category
        at_out = self._broadcast_at_out_switch
        for group, link in enumerate(self._root_out):
            if link.drops(msg):
                continue
            arrival = link.occupy(size, category)
            sim.post_at(arrival, at_out, msg, group, include_self)

    def _broadcast_at_out_switch(self, msg, group, include_self):
        sim = self.sim
        size = msg.size_bytes
        category = msg.category
        arrive = self._arrive_at_node
        src = msg.src
        for node, down in self._members[group]:
            if node == src and not include_self:
                continue
            if down.drops(msg):
                continue
            arrival = down.occupy(size, category)
            sim.post_at(arrival, arrive, node, msg)


class PauseGate:
    """Delivery gate for one paused node.

    Messages arriving inside a pause window buffer in arrival order;
    :meth:`flush` (scheduled at each window's end during install, so it
    precedes same-timestamp arrivals) drains them through the wrapped
    handler in that order.  A nonempty buffer after the run is a
    recovery-oracle violation.
    """

    __slots__ = ("sim", "node_id", "handler", "windows", "buffer", "stats")

    def __init__(self, sim, node_id, handler, windows, stats) -> None:
        self.sim = sim
        self.node_id = node_id
        self.handler = handler
        self.windows = tuple(windows)
        self.buffer: list = []
        self.stats = stats

    def __call__(self, msg) -> None:
        now = self.sim._now
        for begin, end in self.windows:
            if begin <= now < end:
                self.stats["paused_deliveries"] += 1
                self.buffer.append(msg)
                return
        self.handler(msg)

    def flush(self) -> None:
        pending = self.buffer
        self.buffer = []
        handler = self.handler
        for msg in pending:
            handler(msg)


def _merge_windows(windows):
    """Sort and coalesce overlapping ``(start, end)`` intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class FaultInjector:
    """Installs a :class:`FaultPlan` onto a built (not yet run) system."""

    def __init__(self, plan: FaultPlan, recorder=None) -> None:
        self.plan = plan
        #: Optional lineage recorder: fault-dropped transient requests
        #: are reported into it so the token outcome contract can
        #: demand an ``absorbed-by-reissue`` terminal for each chain.
        self.recorder = recorder
        self.installed = False
        self.gates: list[PauseGate] = []
        #: Counters for what the faults actually did (for reports).
        self.stats = {
            "flap_dropped": 0,
            "flap_queued": 0,
            "degraded_crossings": 0,
            "corrupt_dropped": 0,
            "paused_deliveries": 0,
        }

    def install(self, system) -> None:
        """Wire the fault windows into ``system``; call once, before run."""
        if self.installed:
            raise RuntimeError("fault injector already installed")
        plan = self.plan
        plan.validate_for_protocol(system.config.protocol)
        token = is_token_protocol(system.config.protocol)

        link_events = plan.link_events()
        if link_events:
            self._install_link_faults(system, link_events, token)
        pause_events = plan.events_of("node_pause")
        if pause_events:
            self._install_pauses(system, pause_events)
        corrupt_events = plan.events_of("corrupt")
        if corrupt_events:
            self._install_corruption(system, corrupt_events)

        self.installed = True

    # ------------------------------------------------------------------

    def _install_link_faults(self, system, events, token: bool) -> None:
        links = system.network.all_links()
        for link in links:
            if type(link) is not Link:
                # A JitteredLink (or other subclass) already owns the
                # link's class; both layers swap __class__, so they
                # cannot share a link.  (Kernel jitter, drop/dup, and
                # escalation perturbations compose with faults freely.)
                raise ValueError(
                    "link faults cannot be combined with link-level "
                    f"perturbations ({type(link).__name__} already "
                    "installed); use kernel jitter instead"
                )
        for event in events:
            if event.target >= len(links):
                raise ValueError(
                    f"{event.kind} target {event.target} out of range: "
                    f"this {system.config.interconnect} has "
                    f"{len(links)} links"
                )
        stats = self.stats
        for index, link in enumerate(links):
            down = _merge_windows(
                (e.start_ns, e.end_ns)
                for e in events
                if e.kind == "link_flap" and e.target == index
            )
            degraded = sorted(
                (e.start_ns, e.end_ns, e.factor)
                for e in events
                if e.kind == "link_degrade" and e.target == index
            )
            link._fault = LinkFaultState(
                down, degraded, token, stats, self.recorder
            )
            link.__class__ = FaultyLink
        if type(system.network) is TorusInterconnect:
            system.network.__class__ = FaultyTorus
        elif type(system.network) is OrderedTreeInterconnect:
            system.network.__class__ = FaultyTree
        else:
            raise ValueError(
                "link faults need a stock interconnect to take over, "
                f"not {type(system.network).__name__}"
            )

    def _install_pauses(self, system, events) -> None:
        handlers = system.network._handlers
        sim = system.sim
        bad = [e.target for e in events if e.target >= len(handlers)]
        if bad:
            raise ValueError(
                f"node_pause targets {bad} out of range for "
                f"{len(handlers)} nodes"
            )
        for node_id in range(len(handlers)):
            windows = _merge_windows(
                (e.start_ns, e.end_ns)
                for e in events
                if e.target == node_id
            )
            if not windows:
                continue
            gate = PauseGate(
                sim, node_id, handlers[node_id], windows, self.stats
            )
            handlers[node_id] = gate
            self.gates.append(gate)
            for _begin, end in windows:
                sim.post_at(end, gate.flush)

    def _install_corruption(self, system, events) -> None:
        handlers = system.network._handlers
        sim = system.sim
        stats = self.stats
        seed = self.plan.seed
        for node_id, handler in enumerate(handlers):
            windows = tuple(
                (e.start_ns, e.end_ns, e.prob)
                for e in events
                if e.target is None or e.target == node_id
            )
            if not windows:
                continue
            rng = derive_rng(seed, "faults", "corrupt", node_id)

            def wrapped(
                msg,
                _orig=handler,
                _random=rng.random,
                _windows=windows,
                _sim=sim,
                _stats=stats,
                _recorder=self.recorder,
                _node=node_id,
            ):
                if msg.mtype in TRANSIENT_REQUEST_MTYPES:
                    now = _sim._now
                    for begin, end, prob in _windows:
                        if begin <= now < end:
                            if _random() < prob:
                                _stats["corrupt_dropped"] += 1
                                if _recorder is not None:
                                    _recorder.request_dropped(
                                        msg.block, msg.requester, _node, now
                                    )
                                return
                            break
                _orig(msg)

            handlers[node_id] = wrapped

    # ------------------------------------------------------------------

    def undrained_nodes(self) -> list[int]:
        """Nodes whose pause buffers still hold messages (must be none)."""
        return [gate.node_id for gate in self.gates if gate.buffer]

    def last_fault_end_ns(self) -> float:
        return self.plan.last_end_ns()
